"""CLI smoke tests (fast paths only)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_registered(self):
        parser = build_parser()
        for cmd in (
            ["table1"],
            ["table2"],
            ["table3"],
            ["table4"],
            ["table5"],
            ["table6"],
            ["figure2"],
            ["suite"],
            ["show-example"],
            ["partition", "lion"],
        ):
            args = parser.parse_args(cmd)
            assert args.command == cmd[0]


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "nmin(g0) = 3" in out

    def test_table4(self, capsys):
        assert main(["table4", "--k", "3", "--seed", "1"]) == 0
        assert "Table 4" in capsys.readouterr().out

    def test_show_example(self, capsys):
        assert main(["show-example"]) == 0
        out = capsys.readouterr().out
        assert "9" in out and "11" in out

    def test_table2_subset(self, capsys):
        assert main(["table2", "--circuits", "lion,train4"]) == 0
        out = capsys.readouterr().out
        assert "lion" in out and "train4" in out

    def test_table3_subset(self, capsys):
        assert main(["table3", "--circuits", "lion"]) == 0
        assert "Table 3" in capsys.readouterr().out

    def test_figure2_small(self, capsys):
        assert main(["figure2", "--circuit", "lion", "--min", "100"]) == 0
        assert "Figure 2" in capsys.readouterr().out

    def test_partition(self, capsys):
        assert main(["partition", "paper_example", "--max-inputs", "3"]) == 0
        out = capsys.readouterr().out
        assert "Cone-partitioned" in out

    def test_escape(self, capsys):
        assert main(
            ["escape", "lion", "--k", "30", "--nmax", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "worst-case escapes" in out
        # Final row: everything guaranteed on this easy circuit.
        last = out.strip().splitlines()[-1].split()
        assert last[0] == "4"

    def test_gen_tests_podem_method(self, capsys):
        assert main(
            ["gen-tests", "paper_example", "--n", "1", "--method", "podem"]
        ) == 0
        out = capsys.readouterr().out
        assert "podem" in out.splitlines()[0]
        rows = [ln for ln in out.splitlines() if ln and not ln.startswith("#")]
        assert all(set(r) <= {"0", "1"} for r in rows)


class TestAnalyze:
    def test_exhaustive(self, capsys):
        assert main(["analyze", "paper_example"]) == 0
        out = capsys.readouterr().out
        assert "backend=exhaustive" in out
        assert "guaranteed n: 4" in out

    def test_sampled(self, capsys):
        assert main(
            ["analyze", "lion", "--backend", "sampled", "--samples", "8"]
        ) == 0
        out = capsys.readouterr().out
        assert "sampled" in out
        assert "8 of 16 vectors" in out
        assert "confidence" in out

    def test_serial_matches_exhaustive_summary(self, capsys):
        assert main(["analyze", "paper_example"]) == 0
        exhaustive_out = capsys.readouterr().out
        assert main(["analyze", "paper_example", "--backend", "serial"]) == 0
        serial_out = capsys.readouterr().out
        # Identical analysis, only the backend label differs.
        strip = lambda s: [
            ln for ln in s.splitlines() if "backend" not in ln
        ]
        assert strip(exhaustive_out) == strip(serial_out)

    def test_wide_circuit_completes_with_sampled_backend(self, capsys):
        """Acceptance: a >24-input circuit (impossible at seed) finishes
        a worst-case analysis via the sampled backend."""
        assert main(
            [
                "analyze", "wide32",
                "--backend", "sampled",
                "--samples", "256",
                "--seed", "7",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "inputs: 32" in out
        assert "256 of 4294967296 vectors" in out
        assert "guaranteed detected at n=10" in out

    def test_packed_matches_exhaustive_summary(self, capsys):
        assert main(["analyze", "paper_example"]) == 0
        exhaustive_out = capsys.readouterr().out
        assert main(["analyze", "paper_example", "--backend", "packed"]) == 0
        packed_out = capsys.readouterr().out
        strip = lambda s: [
            ln for ln in s.splitlines() if "backend" not in ln
        ]
        assert strip(exhaustive_out) == strip(packed_out)

    def test_packed_matches_sampled_summary(self, capsys):
        """Same seed + samples: the packed engine reproduces the
        sampled analysis line for line."""
        args = ["--samples", "64", "--seed", "7"]
        assert main(
            ["analyze", "wide28", "--backend", "sampled", *args]
        ) == 0
        sampled_out = capsys.readouterr().out
        assert main(
            ["analyze", "wide28", "--backend", "packed", *args]
        ) == 0
        packed_out = capsys.readouterr().out
        strip = lambda s: [
            ln for ln in s.splitlines() if "backend" not in ln
        ]
        assert strip(sampled_out) == strip(packed_out)

    def test_escape_with_sampled_backend(self, capsys):
        assert main(
            [
                "escape", "lion",
                "--backend", "sampled",
                "--samples", "12",
                "--k", "20",
                "--nmax", "3",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "backend=sampled" in out
        assert "worst-case escapes" in out


class TestBackendErrorPaths:
    def test_bad_backend_name_rejected_by_parser(self, capsys):
        with pytest.raises(SystemExit):
            main(["analyze", "lion", "--backend", "warp"])
        assert "invalid choice" in capsys.readouterr().err

    def test_sampled_without_samples(self, capsys):
        assert main(["analyze", "lion", "--backend", "sampled"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "--samples" in err

    def test_samples_exceeding_universe(self, capsys):
        # lion has 4 inputs: |U| = 16.
        assert main(
            ["analyze", "lion", "--backend", "sampled", "--samples", "17"]
        ) == 2
        err = capsys.readouterr().err
        assert "cannot draw 17" in err

    def test_samples_without_sampled_backend(self, capsys):
        assert main(["analyze", "lion", "--samples", "8"]) == 2
        assert "--samples only applies" in capsys.readouterr().err

    def test_replacement_without_sampled_backend(self, capsys):
        assert main(["analyze", "lion", "--replacement"]) == 2
        assert "--replacement only applies" in capsys.readouterr().err

    def test_packed_accepts_samples(self, capsys):
        assert main(
            ["analyze", "lion", "--backend", "packed", "--samples", "8"]
        ) == 0
        assert "8 of 16 vectors" in capsys.readouterr().out

    def test_packed_without_samples_beyond_cap(self, capsys):
        # Exhaustive-packed is capped like the exhaustive engine.
        assert main(["analyze", "wide28", "--backend", "packed"]) == 2
        assert "--samples" in capsys.readouterr().err

    def test_packed_replacement_without_samples(self, capsys):
        # --replacement implies sampling; exhaustive-packed has none.
        assert main(
            ["analyze", "lion", "--backend", "packed", "--replacement"]
        ) == 2
        assert "implies sampling" in capsys.readouterr().err

    def test_exhaustive_beyond_cap(self, capsys):
        # The wide circuits are out of the exhaustive engine's reach.
        assert main(["analyze", "wide28"]) == 2
        err = capsys.readouterr().err
        assert "28" in err

    def test_unknown_circuit(self, capsys):
        assert main(["analyze", "does_not_exist"]) == 2
        assert "unknown circuit" in capsys.readouterr().err


class TestAdaptiveCli:
    """--backend adaptive flags, reporting, and error paths."""

    ARGS = [
        "--backend", "adaptive",
        "--target-halfwidth", "0.2",
        "--initial-samples", "8",
        "--max-samples", "48",
    ]

    def test_analyze_reports_trajectory(self, capsys):
        assert main(["analyze", "mc", *self.ARGS]) == 0
        out = capsys.readouterr().out
        assert "backend=adaptive" in out
        assert "adaptive trajectory" in out
        assert "round 0: K=8 (+8)" in out
        assert "smallest N estimate" in out

    def test_analyze_stratified(self, capsys):
        assert main(
            ["analyze", "mc", *self.ARGS, "--stratify", "bridging"]
        ) == 0
        out = capsys.readouterr().out
        assert "strata" in out

    def test_partition_per_cone_adaptive(self, capsys):
        assert main(
            [
                "partition", "wide28", *self.ARGS,
                "--max-inputs", "12",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "backend=adaptive K=" in out

    def test_samples_flag_rejected(self, capsys):
        assert main(
            ["analyze", "mc", "--backend", "adaptive", "--samples", "8"]
        ) == 2
        err = capsys.readouterr().err
        assert "--samples only applies" in err
        assert "--max-samples" in err

    def test_replacement_flag_rejected(self, capsys):
        assert main(
            ["analyze", "mc", "--backend", "adaptive", "--replacement"]
        ) == 2
        assert "--replacement only applies" in capsys.readouterr().err

    def test_adaptive_flags_require_adaptive_backend(self, capsys):
        assert main(
            ["analyze", "mc", "--target-halfwidth", "0.1"]
        ) == 2
        assert "--target-halfwidth" in capsys.readouterr().err
        assert main(
            ["analyze", "mc", "--stratify", "bridging"]
        ) == 2
        assert "--stratify" in capsys.readouterr().err
        assert main(
            ["analyze", "mc", "--max-samples", "64"]
        ) == 2
        assert "--max-samples" in capsys.readouterr().err

    def test_invalid_rule_is_friendly_error(self, capsys):
        assert main(
            [
                "analyze", "mc", "--backend", "adaptive",
                "--target-halfwidth", "0",
            ]
        ) == 2
        assert "target_halfwidth" in capsys.readouterr().err
        assert main(
            [
                "analyze", "mc", "--backend", "adaptive",
                "--confidence", "1.0",
            ]
        ) == 2
        assert "confidence" in capsys.readouterr().err


class TestJobsAndCache:
    """--jobs / REPRO_JOBS threading and the `repro cache` subcommand."""

    def test_jobs_matches_single_process_summary(self, capsys, tmp_path,
                                                 monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert main(["analyze", "lion"]) == 0
        single_out = capsys.readouterr().out
        assert main(["analyze", "lion", "--jobs", "2"]) == 0
        parallel_out = capsys.readouterr().out
        strip = lambda s: [
            ln for ln in s.splitlines() if "backend" not in ln
        ]
        assert strip(single_out) == strip(parallel_out)
        assert "jobs=2" in parallel_out

    def test_jobs_zero_rejected(self, capsys):
        assert main(["analyze", "lion", "--jobs", "0"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "--jobs" in err

    def test_jobs_negative_rejected(self, capsys):
        assert main(["analyze", "lion", "--jobs", "-3"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_malformed_repro_jobs_rejected(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        assert main(["analyze", "lion"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "REPRO_JOBS" in err

    def test_explicit_jobs_beats_env(self, capsys, monkeypatch):
        # With --jobs given, the (malformed) env var is never consulted.
        monkeypatch.setenv("REPRO_JOBS", "many")
        assert main(["analyze", "lion", "--jobs", "1"]) == 0
        assert "guaranteed n" in capsys.readouterr().out

    def test_cache_info_and_clear(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "shards"))
        assert main(["analyze", "lion", "--jobs", "2"]) == 0
        capsys.readouterr()
        assert main(["cache", "info"]) == 0
        out = capsys.readouterr().out
        assert "entries:" in out and str(tmp_path) in out
        assert "entries: 0" not in out  # the analyze run stored shards
        assert main(["cache", "clear"]) == 0
        assert "removed" in capsys.readouterr().out
        assert main(["cache", "info"]) == 0
        assert "entries: 0" in capsys.readouterr().out

    def test_cache_dir_flag_overrides_env(self, capsys, tmp_path,
                                          monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        assert main(
            ["cache", "info", "--cache-dir", str(tmp_path / "flag")]
        ) == 0
        assert "flag" in capsys.readouterr().out

    def test_partition_wide_backend(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(
            [
                "partition", "wide28",
                "--max-inputs", "10",
                "--backend", "sampled",
                "--samples", "32",
                "--seed", "3",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "backend=sampled" in out  # wide cones analyzed, not skipped
        assert "Cone-partitioned" in out

    def test_partition_wide_without_backend_fails(self, capsys):
        assert main(["partition", "wide28", "--max-inputs", "10"]) == 2
        assert "cannot partition" in capsys.readouterr().err

    def test_partition_wide_packed_tagged_correctly(self, capsys,
                                                    tmp_path, monkeypatch):
        pytest.importorskip("numpy")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(
            [
                "partition", "wide28",
                "--max-inputs", "10",
                "--backend", "packed",
                "--samples", "32",
                "--seed", "3",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "backend=packed" in out  # tag names the engine in use

    def test_partition_jobs_threaded(self, capsys, tmp_path, monkeypatch):
        # --jobs must not be dropped for the default exhaustive backend:
        # the cone builds go through the shard cache, observable on disk.
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "shards"))
        assert main(["partition", "paper_example", "--max-inputs", "3"]) == 0
        single_out = capsys.readouterr().out
        assert not (tmp_path / "shards").exists()
        assert main(
            ["partition", "paper_example", "--max-inputs", "3",
             "--jobs", "2"]
        ) == 0
        jobs_out = capsys.readouterr().out
        assert jobs_out == single_out  # identical analysis
        assert list((tmp_path / "shards").glob("*.pkl"))  # sharded build ran


class TestExecutorsAndQueueCLI:
    """--executor threading, `repro worker`, and `repro queue`."""

    @staticmethod
    def _drain(queue_dir, idle_exit=5.0):
        import threading

        from repro.parallel import QueueWorker, WorkQueue

        def serve():
            QueueWorker(
                WorkQueue(queue_dir), poll_interval=0.01
            ).serve(idle_exit=idle_exit)

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        return thread

    @staticmethod
    def _enqueue_lion_shards(queue_dir, count=2):
        from repro.bench_suite.registry import get_circuit
        from repro.faults.stuck_at import collapsed_stuck_at_faults
        from repro.faultsim.backends import ExhaustiveBackend
        from repro.parallel import ShardTask, WorkQueue, shard_key

        circuit = get_circuit("lion")
        backend = ExhaustiveBackend()
        base = tuple(backend.line_signatures(circuit))
        faults = collapsed_stuck_at_faults(circuit)
        queue = WorkQueue(queue_dir)
        for index in range(count):
            task = ShardTask(
                circuit=circuit,
                backend=backend,
                kind="stuck_at",
                faults=tuple(faults[2 * index : 2 * index + 2]),
                base_signatures=base,
                shard_index=index,
            )
            queue.enqueue(
                task,
                shard_key(circuit, backend, task.kind, task.faults),
            )
        return queue

    def test_inline_executor_matches_plain_summary(self, capsys, tmp_path,
                                                   monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "shards"))
        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        assert main(["analyze", "lion"]) == 0
        plain_out = capsys.readouterr().out
        assert main(["analyze", "lion", "--executor", "inline"]) == 0
        inline_out = capsys.readouterr().out
        strip = lambda s: [
            ln for ln in s.splitlines() if "backend" not in ln
        ]
        assert strip(plain_out) == strip(inline_out)
        assert "executor=inline" in inline_out
        # The inline executor still runs the sharded, cached build.
        assert list((tmp_path / "shards").glob("*.pkl"))

    def test_queue_executor_matches_plain_summary(self, capsys, tmp_path,
                                                  monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "shards"))
        queue_dir = tmp_path / "queue"
        thread = self._drain(queue_dir)
        assert main(["analyze", "lion"]) == 0
        plain_out = capsys.readouterr().out
        assert main(
            ["analyze", "lion", "--executor", "queue",
             "--queue-dir", str(queue_dir)]
        ) == 0
        queue_out = capsys.readouterr().out
        strip = lambda s: [
            ln for ln in s.splitlines() if "backend" not in ln
        ]
        assert strip(plain_out) == strip(queue_out)
        assert "executor=queue" in queue_out
        thread.join()

    def test_env_executor_and_queue_dir(self, capsys, tmp_path,
                                        monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "shards"))
        queue_dir = tmp_path / "queue"
        monkeypatch.setenv("REPRO_EXECUTOR", "queue")
        monkeypatch.setenv("REPRO_QUEUE_DIR", str(queue_dir))
        thread = self._drain(queue_dir)
        assert main(["analyze", "lion"]) == 0
        assert "executor=queue" in capsys.readouterr().out
        thread.join()

    def test_worker_drains_and_reports(self, capsys, tmp_path,
                                       monkeypatch):
        queue_dir = tmp_path / "queue"
        queue = self._enqueue_lion_shards(queue_dir, count=2)
        assert main(
            ["worker", "--queue", str(queue_dir), "--idle-exit", "0.1",
             "--poll-interval", "0.01"]
        ) == 0
        out = capsys.readouterr().out
        assert "built 2 shard(s)" in out
        assert queue.stats()["results"] == 2
        assert queue.pending_keys() == []

    def test_worker_max_tasks(self, capsys, tmp_path):
        queue_dir = tmp_path / "queue"
        self._enqueue_lion_shards(queue_dir, count=3)
        assert main(
            ["worker", "--queue", str(queue_dir), "--max-tasks", "1",
             "--poll-interval", "0.01"]
        ) == 0
        assert "built 1 shard(s)" in capsys.readouterr().out

    def test_worker_without_queue_dir(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_QUEUE_DIR", raising=False)
        assert main(["worker", "--idle-exit", "0.1"]) == 2
        assert "REPRO_QUEUE_DIR" in capsys.readouterr().err

    def test_queue_info_and_clear(self, capsys, tmp_path):
        queue_dir = tmp_path / "queue"
        self._enqueue_lion_shards(queue_dir, count=2)
        assert main(["queue", "info", "--queue", str(queue_dir)]) == 0
        out = capsys.readouterr().out
        assert "pending tasks: 2" in out
        assert main(["queue", "clear", "--queue", str(queue_dir)]) == 0
        assert "removed 2" in capsys.readouterr().out
        assert main(["queue", "info", "--queue", str(queue_dir)]) == 0
        assert "pending tasks: 0" in capsys.readouterr().out

    def test_queue_executor_without_dir(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_QUEUE_DIR", raising=False)
        assert main(["analyze", "lion", "--executor", "queue"]) == 2
        err = capsys.readouterr().err
        assert "--queue-dir" in err and "REPRO_QUEUE_DIR" in err

    def test_queue_dir_without_queue_executor(self, capsys, tmp_path,
                                              monkeypatch):
        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        assert main(
            ["analyze", "lion", "--queue-dir", str(tmp_path)]
        ) == 2
        assert "--queue-dir only applies" in capsys.readouterr().err
        assert main(
            ["analyze", "lion", "--executor", "pool",
             "--queue-dir", str(tmp_path)]
        ) == 2
        assert "--queue-dir only applies" in capsys.readouterr().err

    def test_bad_executor_rejected_by_parser(self, capsys):
        with pytest.raises(SystemExit):
            main(["analyze", "lion", "--executor", "cluster"])
        assert "invalid choice" in capsys.readouterr().err

    def test_cache_info_reports_format_versions(self, capsys, tmp_path,
                                                monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "shards"))
        assert main(["analyze", "lion", "--jobs", "2"]) == 0
        capsys.readouterr()
        assert main(["cache", "info"]) == 0
        out = capsys.readouterr().out
        assert "format v1:" in out

    def test_partition_executor_threaded(self, capsys, tmp_path,
                                         monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "shards"))
        queue_dir = tmp_path / "queue"
        thread = self._drain(queue_dir)
        assert main(["partition", "paper_example", "--max-inputs", "3"]) == 0
        plain_out = capsys.readouterr().out
        assert main(
            ["partition", "paper_example", "--max-inputs", "3",
             "--executor", "queue", "--queue-dir", str(queue_dir)]
        ) == 0
        queue_out = capsys.readouterr().out
        assert queue_out == plain_out  # identical analysis
        from repro.parallel import WorkQueue

        assert WorkQueue(queue_dir).stats()["results"] > 0
        thread.join()
