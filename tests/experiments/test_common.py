"""Experiment-layer infrastructure: caching, env overrides, rendering."""

from __future__ import annotations

import pytest

from repro.experiments.common import (
    env_int,
    get_universe,
    get_worst_case,
    render_rows,
    suite_circuits,
)


class TestCaches:
    def test_universe_cached(self):
        assert get_universe("lion") is get_universe("lion")

    def test_worst_case_cached(self):
        assert get_worst_case("lion") is get_worst_case("lion")

    def test_worst_case_uses_cached_universe(self):
        u = get_universe("lion")
        wc = get_worst_case("lion")
        assert wc.target_table is u.target_table


class TestEnvOverrides:
    def test_env_int_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TESTVAR", raising=False)
        assert env_int("REPRO_TESTVAR", 7) == 7

    def test_env_int_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_TESTVAR", "42")
        assert env_int("REPRO_TESTVAR", 7) == 42

    def test_suite_circuits_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CIRCUITS", raising=False)
        assert len(suite_circuits()) == 35

    def test_suite_circuits_custom_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CIRCUITS", raising=False)
        assert suite_circuits(("a", "b")) == ["a", "b"]

    def test_suite_circuits_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CIRCUITS", "lion, keyb ,cse")
        assert suite_circuits() == ["lion", "keyb", "cse"]


class TestRenderRows:
    def test_alignment(self):
        out = render_rows(
            ["name", "v1", "v2"],
            [["a", "1", "22"], ["bbb", "333", "4"]],
        )
        lines = out.splitlines()
        assert len(lines) == 4
        # First column left-aligned, others right-aligned.
        assert lines[2].startswith("a ")
        assert lines[2].rstrip().endswith("22")

    def test_empty_rows(self):
        out = render_rows(["h1", "h2"], [])
        assert "h1" in out

    def test_wide_cells_grow_columns(self):
        out = render_rows(["h"], [["very-long-cell-content"]])
        assert "very-long-cell-content" in out
