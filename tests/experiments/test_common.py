"""Experiment-layer infrastructure: caching, env overrides, rendering."""

from __future__ import annotations

from repro.experiments.common import (
    backend_from_env,
    env_int,
    get_universe,
    get_worst_case,
    render_rows,
    suite_circuits,
)
from repro.faultsim.backends import ExhaustiveBackend, SampledBackend


class TestCaches:
    def test_universe_cached(self):
        assert get_universe("lion") is get_universe("lion")

    def test_worst_case_cached(self):
        assert get_worst_case("lion") is get_worst_case("lion")

    def test_worst_case_uses_cached_universe(self):
        u = get_universe("lion")
        wc = get_worst_case("lion")
        assert wc.target_table is u.target_table

    def test_backend_keys_the_cache(self):
        sampled = SampledBackend(8, seed=1)
        u_default = get_universe("lion")
        u_sampled = get_universe("lion", sampled)
        assert u_sampled is not u_default
        assert u_sampled is get_universe("lion", SampledBackend(8, seed=1))
        assert u_sampled.target_table.universe.size == 8

    def test_explicit_exhaustive_shares_default_cache_entry(self, monkeypatch):
        u_default = get_universe("lion")
        assert get_universe("lion", ExhaustiveBackend()) is u_default
        monkeypatch.setenv("REPRO_BACKEND", "exhaustive")
        assert get_universe("lion") is u_default

    def test_env_switch_respected_after_default_call(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        u_default = get_universe("lion")
        monkeypatch.setenv("REPRO_BACKEND", "sampled")
        monkeypatch.setenv("REPRO_SAMPLES", "8")
        monkeypatch.setenv("REPRO_SEED", "1")
        u_env = get_universe("lion")
        assert u_env is not u_default
        assert u_env.target_table.universe.size == 8


class TestEnvOverrides:
    def test_env_int_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TESTVAR", raising=False)
        assert env_int("REPRO_TESTVAR", 7) == 7

    def test_env_int_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_TESTVAR", "42")
        assert env_int("REPRO_TESTVAR", 7) == 42

    def test_suite_circuits_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CIRCUITS", raising=False)
        assert len(suite_circuits()) == 35

    def test_suite_circuits_custom_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CIRCUITS", raising=False)
        assert suite_circuits(("a", "b")) == ["a", "b"]

    def test_suite_circuits_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CIRCUITS", "lion, keyb ,cse")
        assert suite_circuits() == ["lion", "keyb", "cse"]

    def test_backend_from_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert backend_from_env() is None

    def test_backend_from_env_sampled(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "sampled")
        monkeypatch.setenv("REPRO_SAMPLES", "64")
        monkeypatch.setenv("REPRO_SEED", "3")
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert backend_from_env() == SampledBackend(64, seed=3)

    def test_backend_from_env_jobs_only(self, monkeypatch):
        from repro.faultsim.backends import ExhaustiveBackend
        from repro.parallel import ParallelBackend

        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        monkeypatch.setenv("REPRO_JOBS", "2")
        backend = backend_from_env()
        assert isinstance(backend, ParallelBackend)
        assert backend.base == ExhaustiveBackend()
        assert backend.jobs == 2

    def test_backend_from_env_jobs_wraps_engine(self, monkeypatch):
        from repro.parallel import ParallelBackend

        monkeypatch.setenv("REPRO_BACKEND", "sampled")
        monkeypatch.setenv("REPRO_SAMPLES", "64")
        monkeypatch.setenv("REPRO_SEED", "3")
        monkeypatch.setenv("REPRO_JOBS", "2")
        backend = backend_from_env()
        assert isinstance(backend, ParallelBackend)
        assert backend.base == SampledBackend(64, seed=3)

    def test_backend_from_env_jobs_one_is_single_process(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        monkeypatch.setenv("REPRO_JOBS", "1")
        assert backend_from_env() is None


class TestParallelCacheComposition:
    """Parallel-built universes share entries with their base backend
    (the tables are bit-identical, so caching them twice would only
    duplicate hundreds of megabytes)."""

    def test_parallel_shares_base_cache_entry(self, tmp_path, monkeypatch):
        from repro.parallel import ParallelBackend

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        base = SampledBackend(8, seed=2)
        u_base = get_universe("lion", base)
        u_parallel = get_universe(
            "lion", ParallelBackend(base=base, jobs=2)
        )
        assert u_parallel is u_base

    def test_parallel_exhaustive_shares_default_entry(
        self, tmp_path, monkeypatch
    ):
        from repro.parallel import ParallelBackend

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        u_default = get_universe("lion")
        wrapped = ParallelBackend(base=ExhaustiveBackend(), jobs=2)
        assert get_universe("lion", wrapped) is u_default
        assert get_worst_case("lion", wrapped) is get_worst_case("lion")

    def test_env_jobs_shares_default_entry(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        u_default = get_universe("lion")
        monkeypatch.setenv("REPRO_JOBS", "2")
        assert get_universe("lion") is u_default

    def test_executor_normalized_cache_keys(self, tmp_path, monkeypatch):
        # A distributed-built universe and a local build share one LRU
        # entry: the cache keys on the unwrapped base, never on the
        # execution substrate.
        from repro.parallel import (
            InlineExecutor,
            ParallelBackend,
            QueueExecutor,
        )

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        base = SampledBackend(8, seed=3)
        u_base = get_universe("lion", base)
        inline = ParallelBackend(base=base, executor=InlineExecutor())
        assert get_universe("lion", inline) is u_base
        # The queue-wrapped lookup is a cache hit, so the queue itself
        # is never consulted (no workers needed here).
        queued = ParallelBackend(
            base=base,
            executor=QueueExecutor(queue_dir=str(tmp_path / "q")),
        )
        assert get_universe("lion", queued) is u_base

    def test_backend_from_env_executor(self, tmp_path, monkeypatch):
        from repro.parallel import ParallelBackend, QueueExecutor

        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        monkeypatch.setenv("REPRO_EXECUTOR", "queue")
        monkeypatch.setenv("REPRO_QUEUE_DIR", str(tmp_path / "q"))
        backend = backend_from_env()
        assert isinstance(backend, ParallelBackend)
        assert isinstance(backend.executor, QueueExecutor)
        assert backend.base == ExhaustiveBackend()
        monkeypatch.delenv("REPRO_EXECUTOR")
        monkeypatch.delenv("REPRO_QUEUE_DIR")
        assert backend_from_env() is None


class TestRenderRows:
    def test_alignment(self):
        out = render_rows(
            ["name", "v1", "v2"],
            [["a", "1", "22"], ["bbb", "333", "4"]],
        )
        lines = out.splitlines()
        assert len(lines) == 4
        # First column left-aligned, others right-aligned.
        assert lines[2].startswith("a ")
        assert lines[2].rstrip().endswith("22")

    def test_empty_rows(self):
        out = render_rows(["h1", "h2"], [])
        assert "h1" in out

    def test_wide_cells_grow_columns(self):
        out = render_rows(["h"], [["very-long-cell-content"]])
        assert "very-long-cell-content" in out
