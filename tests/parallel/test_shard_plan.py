"""Shard plans: balance, determinism, and jobs-independence."""

from __future__ import annotations

import pytest

from repro.errors import AnalysisError
from repro.parallel import DEFAULT_NUM_SHARDS, Shard, ShardPlan


class TestShardPlan:
    def test_balanced_cover(self):
        plan = ShardPlan(4)
        shards = plan.shards(10)
        assert [len(s) for s in shards] == [3, 3, 2, 2]
        assert shards[0].start == 0
        assert shards[-1].stop == 10
        for prev, cur in zip(shards, shards[1:], strict=False):
            assert cur.start == prev.stop  # contiguous, ordered

    def test_sizes_differ_by_at_most_one(self):
        for num_shards in (1, 2, 3, 7, 8, 16):
            for n in (1, 5, 16, 97, 256):
                sizes = [len(s) for s in ShardPlan(num_shards).shards(n)]
                assert sum(sizes) == n
                assert max(sizes) - min(sizes) <= 1

    def test_no_empty_shards(self):
        shards = ShardPlan(8).shards(3)
        assert len(shards) == 3
        assert all(len(s) == 1 for s in shards)

    def test_zero_items(self):
        assert ShardPlan(4).shards(0) == []
        assert ShardPlan(4).split([]) == []

    def test_split_concatenates_back(self):
        items = list(range(23))
        parts = ShardPlan(5).split(items)
        assert [x for part in parts for x in part] == items

    def test_deterministic(self):
        assert ShardPlan(6).shards(50) == ShardPlan(6).shards(50)

    def test_plan_is_jobs_independent(self):
        # The default plan never consults a worker count: the same fault
        # list cuts identically no matter how many processes run it —
        # the property behind cross-`--jobs` shard-cache sharing.
        assert ShardPlan().num_shards == DEFAULT_NUM_SHARDS

    def test_invalid_num_shards(self):
        with pytest.raises(AnalysisError, match="num_shards"):
            ShardPlan(0)

    def test_invalid_num_items(self):
        with pytest.raises(AnalysisError, match="num_items"):
            ShardPlan(2).shards(-1)

    def test_invalid_shard_bounds(self):
        with pytest.raises(AnalysisError, match="bounds"):
            Shard(0, 3, 3)
        with pytest.raises(AnalysisError, match="index"):
            Shard(-1, 0, 1)
