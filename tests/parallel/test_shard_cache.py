"""The persistent shard cache: keying, atomicity, degradation."""

from __future__ import annotations

import pickle

import pytest

from repro.bench_suite.registry import get_circuit
from repro.faults.stuck_at import collapsed_stuck_at_faults
from repro.faultsim.backends import ExhaustiveBackend, SampledBackend
from repro.parallel import (
    ShardCache,
    backend_cache_key,
    cache_stats,
    circuit_digest,
    default_cache_dir,
    reset_cache_stats,
    shard_key,
)


@pytest.fixture()
def cache(tmp_path):
    return ShardCache(tmp_path / "shards")


class TestKeys:
    def test_circuit_digest_stable(self):
        assert circuit_digest(get_circuit("lion")) == circuit_digest(
            get_circuit("lion")
        )

    def test_circuit_digest_distinguishes_structures(self):
        assert circuit_digest(get_circuit("lion")) != circuit_digest(
            get_circuit("train4")
        )

    def test_backend_key_covers_configuration(self):
        assert backend_cache_key(SampledBackend(8, seed=1)) != (
            backend_cache_key(SampledBackend(8, seed=2))
        )
        assert backend_cache_key(SampledBackend(8, seed=1)) == (
            backend_cache_key(SampledBackend(8, seed=1))
        )

    def test_shard_key_sensitivity(self):
        circuit = get_circuit("lion")
        faults = collapsed_stuck_at_faults(circuit)
        base = shard_key(circuit, ExhaustiveBackend(), "stuck_at", faults[:4])
        assert base == shard_key(
            circuit, ExhaustiveBackend(), "stuck_at", faults[:4]
        )
        # Any input change re-addresses the entry.
        assert base != shard_key(
            circuit, ExhaustiveBackend(), "stuck_at", faults[:5]
        )
        assert base != shard_key(
            circuit, ExhaustiveBackend(), "bridging", faults[:4]
        )
        assert base != shard_key(
            circuit, SampledBackend(8), "stuck_at", faults[:4]
        )
        assert base != shard_key(
            get_circuit("train4"), ExhaustiveBackend(), "stuck_at", faults[:4]
        )


class TestStore:
    KEY = "a" * 64

    def test_roundtrip(self, cache):
        signatures = [0, 1, (1 << 200) - 3]
        cache.put(self.KEY, signatures)
        assert cache.get(self.KEY) == signatures
        assert cache.hits == 1 and cache.misses == 0 and cache.stores == 1

    def test_miss(self, cache):
        assert cache.get(self.KEY) is None
        assert cache.misses == 1

    def test_repeated_put_is_a_hit_not_a_rewrite(self, cache):
        # Content-addressed: a second writer of the same key lost a race
        # against an identical payload; the existing entry is a hit and
        # is never hammered (here the differing value makes the
        # keep-first behavior observable).
        cache.put(self.KEY, [1])
        assert cache.stores == 1
        cache.put(self.KEY, [1])
        assert cache.stores == 1 and cache.hits == 1
        assert cache.get(self.KEY) == [1]
        assert len(cache.entries()) == 1
        # No stray temp files left behind.
        assert list(cache.root.glob("*.tmp")) == []

    def test_corrupt_entry_is_a_miss(self, cache):
        cache.put(self.KEY, [7])
        path = cache.entries()[0]
        path.write_bytes(b"not a pickle")
        assert cache.get(self.KEY) is None

    def test_put_repairs_corrupt_entry(self, cache):
        # Self-heal: only a *readable* existing entry short-circuits
        # put; a torn one (crashed host mid-write on a shared mount)
        # must be overwritten, or the key would miss forever.
        cache.put(self.KEY, [7])
        cache.entries()[0].write_bytes(b"not a pickle")
        cache.put(self.KEY, [7])
        assert cache.get(self.KEY) == [7]

    def test_wrong_version_is_a_miss(self, cache):
        cache.put(self.KEY, [7])
        path = cache.entries()[0]
        path.write_bytes(
            pickle.dumps({"version": -1, "signatures": [7]})
        )
        assert cache.get(self.KEY) is None

    def test_clear_and_inspect(self, cache):
        for i in range(3):
            cache.put(f"{i}" * 64, [i])
        assert len(cache.entries()) == 3
        assert cache.total_bytes() > 0
        assert cache.clear() == 3
        assert cache.entries() == []
        assert cache.total_bytes() == 0

    def test_unwritable_root_degrades_silently(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where the cache dir should be")
        cache = ShardCache(blocker)  # mkdir will fail with EEXIST/ENOTDIR
        cache.put(self.KEY, [1])  # must not raise
        assert cache.stores == 0
        assert cache.get(self.KEY) is None

    def test_global_stats_aggregate_instances(self, tmp_path):
        reset_cache_stats()
        a = ShardCache(tmp_path / "s")
        a.put(self.KEY, [5])
        b = ShardCache(tmp_path / "s")  # a fresh instance, same directory
        assert b.get(self.KEY) == [5]
        stats = cache_stats()
        assert stats["stores"] == 1
        assert stats["hits"] == 1

    def test_default_dir_honours_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
        assert default_cache_dir() == tmp_path / "custom"
        monkeypatch.delenv("REPRO_CACHE_DIR")
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_dir() == tmp_path / "xdg" / "repro" / "shards"


def _hammer_one_key(args):
    """Worker for the multi-writer race test (picklable by reference)."""
    root, key, rounds = args
    cache = ShardCache(root)
    for _ in range(rounds):
        cache.put(key, list(range(64)))
    return cache.stores


class TestConcurrentWriters:
    """Racing writers of one key never tear or duplicate the entry."""

    KEY = "c" * 64

    def test_two_processes_hammering_same_key(self, tmp_path):
        import multiprocessing

        root = str(tmp_path / "shards")
        ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(2) as pool:
            stores = pool.map(
                _hammer_one_key, [(root, self.KEY, 50)] * 2
            )
        # At least one writer persisted the entry; losers saw it as a
        # hit instead of rewriting.  Whatever the interleaving, the
        # surviving entry is complete and readable, there is exactly
        # one of it, and no temp droppings remain.
        assert sum(stores) >= 1
        cache = ShardCache(root)
        assert cache.get(self.KEY) == list(range(64))
        assert len(cache.entries()) == 1
        assert list(cache.root.glob("*.tmp")) == []


class TestVersions:
    """Format-version accounting behind `repro cache info`."""

    def test_version_counts(self, cache):
        from repro.parallel.cache import CACHE_FORMAT_VERSION

        assert cache.versions() == {}
        cache.put("a" * 64, [1])
        cache.put("b" * 64, [2])
        assert cache.versions() == {f"v{CACHE_FORMAT_VERSION}": 2}

    def test_stale_and_corrupt_entries_are_tallied(self, cache):
        cache.put("a" * 64, [1])
        (cache.root / ("d" * 64 + ".pkl")).write_bytes(b"not a pickle")
        (cache.root / ("e" * 64 + ".pkl")).write_bytes(
            pickle.dumps({"version": -1, "signatures": []})
        )
        counts = cache.versions()
        assert counts["corrupt"] == 1
        assert counts["v-1"] == 1
        # The stale-version entry is exactly what get() refuses to serve.
        assert cache.get("e" * 64) is None
