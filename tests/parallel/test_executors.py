"""The ShardExecutor protocol: conformance, factories, injection.

Queue mechanics (leases, heartbeats, retries, the worker loop) live in
``test_workqueue.py``; the executor × base-engine bit-identity sweeps
live with the other differential suites in
``tests/test_backend_differential.py``.  This module covers the
protocol itself — the three implementations' configuration contracts,
the ``--executor``/``REPRO_EXECUTOR`` factories, and how executors are
injected through ``ParallelBackend`` / ``maybe_parallel`` / the
adaptive controller.
"""

from __future__ import annotations

import pytest

from repro.adaptive import AdaptiveBackend
from repro.bench_suite.registry import get_circuit
from repro.errors import AnalysisError
from repro.faults.universe import FaultUniverse
from repro.faultsim.backends import (
    ExhaustiveBackend,
    SampledBackend,
    make_backend,
)
from repro.parallel import (
    InlineExecutor,
    ParallelBackend,
    PoolExecutor,
    QueueExecutor,
    ShardExecutor,
    make_executor,
    maybe_parallel,
    resolve_executor,
)


class TestProtocol:
    def test_all_three_satisfy_protocol(self):
        for executor in (
            InlineExecutor(),
            PoolExecutor(jobs=2),
            QueueExecutor(queue_dir="/tmp/q"),
        ):
            assert isinstance(executor, ShardExecutor)

    def test_describe(self):
        assert InlineExecutor().describe() == "inline"
        assert PoolExecutor(jobs=3).describe() == "pool jobs=3"
        assert QueueExecutor(queue_dir="/tmp/q").describe() == "queue"

    def test_pool_rejects_bad_jobs(self):
        with pytest.raises(AnalysisError, match="jobs"):
            PoolExecutor(jobs=0)

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"poll_interval": 0.0}, "poll_interval"),
            ({"lease_timeout": -1.0}, "lease_timeout"),
            ({"max_attempts": 0}, "max_attempts"),
            ({"wait_timeout": 0.0}, "wait_timeout"),
        ],
    )
    def test_queue_validates_configuration(self, kwargs, match):
        with pytest.raises(AnalysisError, match=match):
            QueueExecutor(queue_dir="/tmp/q", **kwargs)

    def test_queue_dir_resolution(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_QUEUE_DIR", raising=False)
        with pytest.raises(AnalysisError, match="REPRO_QUEUE_DIR"):
            QueueExecutor().resolved_dir()
        monkeypatch.setenv("REPRO_QUEUE_DIR", str(tmp_path))
        assert QueueExecutor().resolved_dir() == str(tmp_path)
        # An explicit directory beats the environment.
        assert QueueExecutor(queue_dir="/x").resolved_dir() == "/x"


class TestFactories:
    def test_make_executor_names(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert make_executor("inline") == InlineExecutor()
        assert make_executor("pool") == PoolExecutor(jobs=2)
        assert make_executor("pool", jobs=5) == PoolExecutor(jobs=5)
        queue = make_executor("queue", queue_dir=str(tmp_path))
        assert isinstance(queue, QueueExecutor)
        assert queue.queue_dir == str(tmp_path)

    def test_make_executor_pool_honours_explicit_jobs_one(
        self, monkeypatch
    ):
        # A user who pinned one worker gets one (PoolExecutor(1) runs
        # inline); only *unspecified* jobs falls back to a real pool.
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert make_executor("pool", jobs=1) == PoolExecutor(jobs=1)
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert make_executor("pool") == PoolExecutor(jobs=3)
        monkeypatch.setenv("REPRO_JOBS", "1")
        assert make_executor("pool") == PoolExecutor(jobs=2)

    def test_make_executor_unknown_name(self):
        with pytest.raises(AnalysisError, match="unknown executor"):
            make_executor("cluster")

    def test_queue_requires_directory(self, monkeypatch):
        monkeypatch.delenv("REPRO_QUEUE_DIR", raising=False)
        with pytest.raises(AnalysisError, match="queue directory"):
            make_executor("queue")

    def test_queue_dir_only_for_queue(self, tmp_path):
        for name in ("inline", "pool"):
            with pytest.raises(AnalysisError, match="--queue-dir"):
                make_executor(name, queue_dir=str(tmp_path))

    def test_resolve_executor_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        assert resolve_executor() is None
        monkeypatch.setenv("REPRO_EXECUTOR", "pool")
        assert resolve_executor(jobs=3) == PoolExecutor(jobs=3)
        # An explicit name beats the environment.
        assert resolve_executor("inline") == InlineExecutor()

    def test_resolve_executor_queue_env_dir(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_EXECUTOR", "queue")
        monkeypatch.setenv("REPRO_QUEUE_DIR", str(tmp_path))
        executor = resolve_executor()
        assert isinstance(executor, QueueExecutor)
        assert executor.queue_dir == str(tmp_path)

    def test_resolve_rejects_orphan_queue_dir(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        with pytest.raises(AnalysisError, match="--queue-dir"):
            resolve_executor(queue_dir=str(tmp_path))


class TestParallelBackendIntegration:
    def test_jobs_sugar_resolves_executor(self):
        base = ExhaustiveBackend()
        assert ParallelBackend(
            base=base, jobs=1
        ).resolved_executor == InlineExecutor()
        assert ParallelBackend(
            base=base, jobs=4
        ).resolved_executor == PoolExecutor(jobs=4)

    def test_explicit_executor_wins_over_jobs(self):
        backend = ParallelBackend(
            base=ExhaustiveBackend(), jobs=4, executor=InlineExecutor()
        )
        assert backend.resolved_executor == InlineExecutor()

    def test_rejects_non_executor(self):
        with pytest.raises(AnalysisError, match="ShardExecutor"):
            ParallelBackend(base=ExhaustiveBackend(), executor="pool")

    def test_hashable_with_executor(self):
        a = ParallelBackend(
            base=SampledBackend(8, seed=1),
            executor=QueueExecutor(queue_dir="/tmp/q"),
        )
        b = ParallelBackend(
            base=SampledBackend(8, seed=1),
            executor=QueueExecutor(queue_dir="/tmp/q"),
        )
        assert a == b and hash(a) == hash(b)

    def test_inline_executor_build_matches_base(self, tmp_path):
        circuit = get_circuit("lion")
        reference = FaultUniverse(circuit)
        backend = ParallelBackend(
            base=ExhaustiveBackend(),
            executor=InlineExecutor(),
            cache_dir=str(tmp_path / "shards"),
        )
        universe = FaultUniverse(circuit, backend=backend)
        assert universe.target_table.signatures == (
            reference.target_table.signatures
        )
        assert universe.untargeted_table.signatures == (
            reference.untargeted_table.signatures
        )


class TestInjection:
    def test_maybe_parallel_wraps_for_executor_at_jobs_one(self):
        base = ExhaustiveBackend()
        assert maybe_parallel(base, 1) is base
        wrapped = maybe_parallel(base, 1, executor=InlineExecutor())
        assert isinstance(wrapped, ParallelBackend)
        assert wrapped.executor == InlineExecutor()

    def test_maybe_parallel_injects_into_adaptive(self):
        executor = QueueExecutor(queue_dir="/tmp/q")
        backend = maybe_parallel(AdaptiveBackend(), 2, executor=executor)
        assert isinstance(backend, AdaptiveBackend)
        assert backend.jobs == 2
        assert backend.executor == executor

    def test_adaptive_with_execution_preserves_identity(self):
        # jobs/executor are excluded from equality: experiment caches
        # must share tables across execution substrates.
        base = AdaptiveBackend()
        assert base.with_execution(
            jobs=4, executor=InlineExecutor()
        ) == base
        assert base.with_jobs(3).jobs == 3

    def test_parallel_rejects_internally_parallel_base(self):
        with pytest.raises(AnalysisError, match="internally"):
            ParallelBackend(base=AdaptiveBackend())

    def test_make_backend_executor_name(self, tmp_path):
        backend = make_backend(
            "sampled", samples=8, seed=1, executor="queue",
            queue_dir=str(tmp_path),
        )
        assert isinstance(backend, ParallelBackend)
        assert backend.base == SampledBackend(8, seed=1)
        assert isinstance(backend.executor, QueueExecutor)

    def test_make_backend_executor_instance(self):
        backend = make_backend("exhaustive", executor=PoolExecutor(jobs=3))
        assert isinstance(backend, ParallelBackend)
        assert backend.resolved_executor == PoolExecutor(jobs=3)

    def test_make_backend_adaptive_executor_injects(self, tmp_path):
        backend = make_backend(
            "adaptive", executor="queue", queue_dir=str(tmp_path)
        )
        assert isinstance(backend, AdaptiveBackend)
        assert isinstance(backend.executor, QueueExecutor)

    def test_make_backend_orphan_queue_dir(self, tmp_path):
        with pytest.raises(AnalysisError, match="queue_dir"):
            make_backend("exhaustive", queue_dir=str(tmp_path))

    def test_universe_executor_kwarg(self, tmp_path):
        universe = FaultUniverse(
            get_circuit("lion"), executor=InlineExecutor()
        )
        assert isinstance(universe.backend, ParallelBackend)
        assert universe.backend.executor == InlineExecutor()
