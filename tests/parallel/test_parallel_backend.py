"""ParallelBackend: protocol conformance, identity, cache behavior.

The bit-for-bit differential sweeps against every base engine live in
``tests/test_backend_differential.py`` (and the packed variants in
``tests/test_packed_differential.py``); this module covers the
subsystem's own contract — configuration validation, shard-layout
independence, the warm-cache acceptance property, and the ``jobs``
threading through :class:`~repro.faults.universe.FaultUniverse`.
"""

from __future__ import annotations

import pytest

from repro.bench_suite.registry import get_circuit
from repro.errors import AnalysisError
from repro.faults.universe import FaultUniverse
from repro.faultsim.backends import (
    DetectionBackend,
    ExhaustiveBackend,
    SampledBackend,
    make_backend,
)
from repro.parallel import (
    ParallelBackend,
    cache_stats,
    maybe_parallel,
    reset_cache_stats,
    resolve_jobs,
)


@pytest.fixture()
def cache_dir(tmp_path):
    return str(tmp_path / "shards")


class TestConfiguration:
    def test_satisfies_protocol(self):
        assert isinstance(
            ParallelBackend(base=ExhaustiveBackend()), DetectionBackend
        )

    def test_rejects_nesting(self):
        inner = ParallelBackend(base=ExhaustiveBackend())
        with pytest.raises(AnalysisError, match="nest"):
            ParallelBackend(base=inner)

    def test_rejects_bad_jobs(self):
        with pytest.raises(AnalysisError, match="jobs"):
            ParallelBackend(base=ExhaustiveBackend(), jobs=0)

    def test_rejects_bad_shards(self):
        with pytest.raises(AnalysisError, match="shards"):
            ParallelBackend(base=ExhaustiveBackend(), shards=0)

    def test_hashable_for_cache_keys(self):
        a = ParallelBackend(base=SampledBackend(8, seed=1), jobs=2)
        b = ParallelBackend(base=SampledBackend(8, seed=1), jobs=2)
        assert a == b and hash(a) == hash(b)

    def test_delegates_needs_base_signatures(self):
        from repro.faultsim.backends import SerialBackend

        assert ParallelBackend(base=ExhaustiveBackend()).needs_base_signatures
        assert not ParallelBackend(base=SerialBackend()).needs_base_signatures

    def test_maybe_parallel(self):
        base = ExhaustiveBackend()
        assert maybe_parallel(base, 1) is base
        wrapped = maybe_parallel(base, 3)
        assert isinstance(wrapped, ParallelBackend)
        assert wrapped.jobs == 3
        # Already-parallel backends pass through un-nested.
        assert maybe_parallel(wrapped, 2) is wrapped

    def test_resolve_jobs(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == 1
        assert resolve_jobs(4) == 4
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs(None) == 3
        assert resolve_jobs(2) == 2  # explicit beats env
        monkeypatch.setenv("REPRO_JOBS", "zero")
        with pytest.raises(AnalysisError, match="REPRO_JOBS"):
            resolve_jobs(None)
        with pytest.raises(AnalysisError, match="jobs"):
            resolve_jobs(0)

    def test_make_backend_jobs(self):
        backend = make_backend("sampled", samples=8, seed=1, jobs=2)
        assert isinstance(backend, ParallelBackend)
        assert backend.base == SampledBackend(8, seed=1)
        assert make_backend("exhaustive", jobs=1) == ExhaustiveBackend()


class TestShardLayoutIndependence:
    """The merged table never depends on the shard or worker count."""

    def test_any_shard_count_is_identical(self, cache_dir):
        circuit = get_circuit("lion")
        reference = FaultUniverse(circuit)
        for shards in (1, 2, 3, 5, 64):
            backend = ParallelBackend(
                base=ExhaustiveBackend(),
                jobs=2,
                shards=shards,
                cache_dir=cache_dir,
            )
            u = FaultUniverse(circuit, backend=backend)
            assert u.target_table.signatures == (
                reference.target_table.signatures
            )
            assert u.untargeted_table.signatures == (
                reference.untargeted_table.signatures
            )
            assert u.untargeted_table.faults == (
                reference.untargeted_table.faults
            )

    def test_drop_undetectable_applied_after_merge(self, cache_dir):
        # More shards than detectable faults: the drop must behave as if
        # the table had been built in one piece.
        circuit = get_circuit("lion")
        backend = ParallelBackend(
            base=ExhaustiveBackend(), jobs=2, shards=64, cache_dir=cache_dir
        )
        single = FaultUniverse(circuit).untargeted_table
        parallel = FaultUniverse(circuit, backend=backend).untargeted_table
        assert parallel.faults == single.faults
        assert all(sig for sig in parallel.signatures)

    def test_explicit_empty_fault_list(self, cache_dir):
        circuit = get_circuit("lion")
        backend = ParallelBackend(
            base=ExhaustiveBackend(), jobs=2, cache_dir=cache_dir
        )
        table = backend.build_stuck_at(circuit, faults=[])
        assert len(table) == 0


class TestShardCacheAcceptance:
    """A repeated build hits the warm shard cache (acceptance criterion)."""

    def test_warm_cache_hit_on_repeated_build(self, cache_dir):
        circuit = get_circuit("beecount")
        backend = ParallelBackend(
            base=SampledBackend(16, seed=3), jobs=2, cache_dir=cache_dir
        )
        reset_cache_stats()
        cold = FaultUniverse(circuit, backend=backend)
        cold.target_table, cold.untargeted_table
        cold_stats = cache_stats()
        assert cold_stats["hits"] == 0
        assert cold_stats["stores"] > 0
        warm = FaultUniverse(circuit, backend=backend)
        warm.target_table, warm.untargeted_table
        warm_stats = cache_stats()
        assert warm_stats["misses"] == cold_stats["misses"]  # no new misses
        assert warm_stats["hits"] == cold_stats["stores"]  # every shard hit
        assert warm.target_table.signatures == cold.target_table.signatures

    def test_cache_shared_across_jobs_values(self, cache_dir):
        # The shard layout is jobs-independent, so a jobs=4 run reuses
        # every shard a jobs=2 run stored.
        circuit = get_circuit("lion")
        first = ParallelBackend(
            base=ExhaustiveBackend(), jobs=2, cache_dir=cache_dir
        )
        u1 = FaultUniverse(circuit, backend=first)
        u1.target_table, u1.untargeted_table
        reset_cache_stats()
        second = ParallelBackend(
            base=ExhaustiveBackend(), jobs=4, cache_dir=cache_dir
        )
        u2 = FaultUniverse(circuit, backend=second)
        u2.target_table, u2.untargeted_table
        stats = cache_stats()
        assert stats["misses"] == 0
        assert stats["hits"] > 0
        assert u2.target_table.signatures == u1.target_table.signatures

    def test_use_cache_false_never_touches_disk(self, tmp_path):
        root = tmp_path / "never"
        backend = ParallelBackend(
            base=ExhaustiveBackend(),
            jobs=2,
            cache_dir=str(root),
            use_cache=False,
        )
        u = FaultUniverse(get_circuit("lion"), backend=backend)
        u.target_table, u.untargeted_table
        assert not root.exists()


class TestFaultUniverseJobs:
    def test_jobs_wraps_backend(self, cache_dir):
        u = FaultUniverse(get_circuit("lion"), jobs=2)
        assert isinstance(u.backend, ParallelBackend)
        assert u.backend.base == ExhaustiveBackend()

    def test_jobs_one_stays_single_process(self):
        u = FaultUniverse(get_circuit("lion"), jobs=1)
        assert u.backend == ExhaustiveBackend()

    def test_jobs_composes_with_backend(self):
        base = SampledBackend(8, seed=1)
        u = FaultUniverse(get_circuit("lion"), backend=base, jobs=2)
        assert isinstance(u.backend, ParallelBackend)
        assert u.backend.base == base

    def test_parallel_backend_passes_through(self):
        backend = ParallelBackend(base=ExhaustiveBackend(), jobs=3)
        u = FaultUniverse(get_circuit("lion"), backend=backend, jobs=2)
        assert u.backend is backend

    def test_bad_jobs_rejected(self):
        with pytest.raises(AnalysisError, match="jobs"):
            FaultUniverse(get_circuit("lion"), jobs=0).backend
