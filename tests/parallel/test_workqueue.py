"""The filesystem work queue: leases, retries, workers, fault paths.

Covers the queue's own contract (atomic claim-by-rename, heartbeat
lease expiry, bounded retries, idempotent enqueue/results) and the
executor fault paths the acceptance criteria name: a worker killed
mid-shard is requeued and the run still completes; a poisoned shard
exhausts its retries and surfaces a clean ``AnalysisError`` naming it;
lease-expiry reclaim is deterministic.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.bench_suite.registry import get_circuit
from repro.errors import AnalysisError
from repro.faults.stuck_at import collapsed_stuck_at_faults
from repro.faults.universe import FaultUniverse
from repro.faultsim.backends import ExhaustiveBackend, SerialBackend
from repro.parallel import (
    ParallelBackend,
    QueueExecutor,
    QueueWorker,
    ShardTask,
    WorkQueue,
    run_shard,
    shard_key,
)

SRC = str(Path(__file__).resolve().parents[2] / "src")


@pytest.fixture()
def queue(tmp_path):
    return WorkQueue(tmp_path / "queue")


def make_task(shard_index: int = 0, count: int = 4) -> ShardTask:
    circuit = get_circuit("lion")
    backend = ExhaustiveBackend()
    faults = collapsed_stuck_at_faults(circuit)
    lo = shard_index * count
    return ShardTask(
        circuit=circuit,
        backend=backend,
        kind="stuck_at",
        faults=tuple(faults[lo : lo + count]),
        base_signatures=tuple(backend.line_signatures(circuit)),
        shard_index=shard_index,
    )


def poisoned_task() -> ShardTask:
    # The serial engine is capped at 16 inputs, so this shard raises a
    # clean AnalysisError on every build attempt, on every worker.
    circuit = get_circuit("wide28")
    return ShardTask(
        circuit=circuit,
        backend=SerialBackend(),
        kind="stuck_at",
        faults=tuple(collapsed_stuck_at_faults(circuit)[:2]),
        base_signatures=None,
        shard_index=0,
    )


def key_of(task: ShardTask) -> str:
    return shard_key(task.circuit, task.backend, task.kind, task.faults)


def drain_in_thread(
    root, idle_exit: float = 3.0, lease_timeout: float = 30.0
) -> threading.Thread:
    """A real drain loop in this process (no subprocess overhead)."""

    def serve() -> None:
        QueueWorker(
            WorkQueue(root),
            poll_interval=0.01,
            lease_timeout=lease_timeout,
        ).serve(idle_exit=idle_exit)

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    return thread


class TestQueueMechanics:
    def test_enqueue_claim_complete_roundtrip(self, queue):
        task = make_task()
        key = key_of(task)
        assert queue.enqueue(task, key)
        assert queue.pending_keys() == [key]
        lease = queue.claim("w1")
        assert lease is not None and lease.key == key
        assert queue.pending_keys() == []
        assert queue.leased_keys() == [key]
        _, signatures = run_shard(lease.task)
        queue.complete(lease, signatures)
        assert queue.leased_keys() == []
        assert queue.result(key) == signatures

    def test_enqueue_is_idempotent(self, queue):
        task = make_task()
        key = key_of(task)
        assert queue.enqueue(task, key)
        assert not queue.enqueue(task, key)  # already pending
        lease = queue.claim("w1")
        assert not queue.enqueue(task, key)  # leased
        queue.complete(lease, [1, 2, 3, 4])
        assert not queue.enqueue(task, key)  # result already present
        assert queue.pending_keys() == []

    def test_claim_is_exclusive(self, queue):
        task = make_task()
        queue.enqueue(task, key_of(task))
        assert queue.claim("w1") is not None
        assert queue.claim("w2") is None

    def test_fail_requeues_with_attempt_accounting(self, queue):
        task = make_task()
        key = key_of(task)
        queue.enqueue(task, key, max_attempts=3)
        lease = queue.claim("w1")
        assert queue.fail(lease, "boom")  # attempt 1: requeued
        assert queue.pending_keys() == [key]
        lease = queue.claim("w1")
        assert lease.attempts == 1
        assert queue.fail(lease, "boom")  # attempt 2: requeued
        lease = queue.claim("w1")
        assert not queue.fail(lease, "boom")  # attempt 3: parked
        assert queue.pending_keys() == []
        assert queue.failed_keys() == [key]
        assert "boom" in queue.failure(key)

    def test_enqueue_clears_stale_failure_marker(self, queue):
        task = make_task()
        key = key_of(task)
        queue.enqueue(task, key, max_attempts=1)
        assert not queue.fail(queue.claim("w1"), "boom")
        assert queue.failed_keys() == [key]
        # A fresh submission of the same analysis retries from scratch.
        assert queue.enqueue(task, key)
        assert queue.failed_keys() == []
        assert queue.pending_keys() == [key]

    def test_stats_and_clear(self, queue):
        a, b = make_task(0), make_task(1)
        queue.enqueue(a, key_of(a))
        queue.enqueue(b, key_of(b))
        lease = queue.claim("w1")
        queue.complete(lease, [0, 0, 0, 0])
        stats = queue.stats()
        assert stats == {
            "pending": 1, "leased": 0, "results": 1, "failed": 0,
        }
        assert queue.clear() == 2  # one task + one result
        assert queue.stats() == {
            "pending": 0, "leased": 0, "results": 0, "failed": 0,
        }


class TestLeaseExpiry:
    """Reclaim is deterministic: strictly a function of heartbeat age."""

    def backdate(self, queue, key, seconds):
        path = queue.claims_dir / f"{key}.task"
        stale = time.time() - seconds
        os.utime(path, (stale, stale))

    def test_fresh_lease_is_not_reclaimed(self, queue):
        task = make_task()
        key = key_of(task)
        queue.enqueue(task, key)
        queue.claim("w1")
        assert queue.reclaim_expired(lease_timeout=60.0) == ([], [])
        assert queue.leased_keys() == [key]

    def test_expired_lease_requeues_deterministically(self, queue):
        task = make_task()
        key = key_of(task)
        queue.enqueue(task, key, max_attempts=3)
        queue.claim("w1")
        self.backdate(queue, key, seconds=120.0)
        # Exactly at the boundary nothing happens; past it, reclaim.
        now = (queue.claims_dir / f"{key}.task").stat().st_mtime
        assert queue.reclaim_expired(120.0, now=now + 120.0) == ([], [])
        requeued, failed = queue.reclaim_expired(60.0)
        assert requeued == [key] and failed == []
        assert queue.pending_keys() == [key]
        assert queue.claim("w2").attempts == 1  # the crash consumed one

    def test_repeated_expiry_exhausts_the_budget(self, queue):
        task = make_task()
        key = key_of(task)
        queue.enqueue(task, key, max_attempts=2)
        for _ in range(2):
            lease = queue.claim("w1")
            assert lease is not None
            self.backdate(queue, key, seconds=120.0)
            queue.reclaim_expired(60.0)
        assert queue.failed_keys() == [key]
        assert "lease expired" in queue.failure(key)

    def test_racing_reclaimers_never_park_a_healthy_shard(self, queue):
        # The reclaim itself is claim-by-rename: a second scavenger
        # arriving after the winner requeued the task must see nothing
        # — not mistake the winner's cleanup for corruption and park
        # the key (which would fail the whole run mid-recovery).
        task = make_task()
        key = key_of(task)
        queue.enqueue(task, key, max_attempts=5)
        queue.claim("w1")
        self.backdate(queue, key, seconds=120.0)
        assert queue.reclaim_expired(60.0) == ([key], [])
        assert queue.reclaim_expired(60.0) == ([], [])  # loser's view
        assert queue.failed_keys() == []
        assert queue.pending_keys() == [key]
        assert queue.claim("w2").attempts == 1  # counted exactly once

    def test_orphaned_reclaim_is_recovered(self, queue):
        # A scavenger that dies between winning the private rename and
        # requeueing would strand the task in a dotted .reclaim file;
        # the next sweep must recover it by age instead of losing the
        # only copy of the shard.
        task = make_task()
        key = key_of(task)
        queue.enqueue(task, key, max_attempts=5)
        lease = queue.claim("w1")
        orphan = queue.claims_dir / f".{key}.12345-67890.reclaim"
        os.rename(lease.path, orphan)
        stale = time.time() - 120.0
        os.utime(orphan, (stale, stale))
        requeued, failed = queue.reclaim_expired(60.0)
        assert requeued == [key] and failed == []
        assert queue.pending_keys() == [key]
        assert not orphan.exists()

    def test_heartbeat_keeps_the_lease_alive(self, queue):
        task = make_task()
        key = key_of(task)
        queue.enqueue(task, key)
        lease = queue.claim("w1")
        self.backdate(queue, key, seconds=120.0)
        queue.heartbeat(lease)
        assert queue.reclaim_expired(60.0) == ([], [])


class TestQueueWorker:
    def test_serve_builds_and_exits_on_idle(self, queue):
        tasks = [make_task(0), make_task(1)]
        for task in tasks:
            queue.enqueue(task, key_of(task))
        stats = QueueWorker(queue, poll_interval=0.01).serve(
            idle_exit=0.1
        )
        assert stats["built"] == 2 and stats["failed"] == 0
        for task in tasks:
            _, expected = run_shard(task)
            assert queue.result(key_of(task)) == expected

    def test_max_tasks_bounds_the_drain(self, queue):
        for index in range(3):
            task = make_task(index)
            queue.enqueue(task, key_of(task))
        stats = QueueWorker(queue, poll_interval=0.01).serve(max_tasks=1)
        assert stats["built"] == 1
        assert len(queue.pending_keys()) == 2

    def test_duplicate_of_finished_shard_is_skipped(self, queue):
        task = make_task()
        key = key_of(task)
        queue.enqueue(task, key)
        lease = queue.claim("w1")
        queue.complete(lease, [9, 9, 9, 9])
        # Simulate a reclaim race: the task reappears after completion.
        queue._write(
            queue.tasks_dir / f"{key}.task",
            {**lease.payload, "attempts": 1},
        )
        stats = QueueWorker(queue, poll_interval=0.01).serve(
            idle_exit=0.1
        )
        assert stats["skipped"] == 1 and stats["built"] == 0
        assert queue.result(key) == [9, 9, 9, 9]

    def test_poisoned_shard_does_not_kill_the_worker(self, queue):
        bad = poisoned_task()
        good = make_task()
        queue.enqueue(bad, key_of(bad), max_attempts=2)
        queue.enqueue(good, key_of(good))
        stats = QueueWorker(queue, poll_interval=0.01).serve(
            idle_exit=0.2
        )
        # The worker retried the poison to exhaustion, parked it, and
        # still built the good shard.
        assert stats["built"] == 1
        assert stats["failed"] == 2
        assert queue.failed_keys() == [key_of(bad)]
        assert "AnalysisError" in queue.failure(key_of(bad))

    def test_validates_configuration(self, queue):
        with pytest.raises(AnalysisError, match="poll_interval"):
            QueueWorker(queue, poll_interval=0.0)
        with pytest.raises(AnalysisError, match="lease_timeout"):
            QueueWorker(queue, lease_timeout=0.0)


class TestQueueExecutorFaultPaths:
    def build_reference(self):
        universe = FaultUniverse(get_circuit("lion"))
        return universe.target_table, universe.untargeted_table

    def queue_backend(self, tmp_path, **executor_kwargs):
        executor_kwargs.setdefault("poll_interval", 0.01)
        executor_kwargs.setdefault("wait_timeout", 60.0)
        return ParallelBackend(
            base=ExhaustiveBackend(),
            executor=QueueExecutor(
                queue_dir=str(tmp_path / "queue"), **executor_kwargs
            ),
            cache_dir=str(tmp_path / "shards"),
        )

    def test_completes_against_live_workers(self, tmp_path):
        backend = self.queue_backend(tmp_path)
        threads = [
            drain_in_thread(tmp_path / "queue") for _ in range(2)
        ]
        universe = FaultUniverse(get_circuit("lion"), backend=backend)
        ref_f, ref_g = self.build_reference()
        assert universe.target_table.signatures == ref_f.signatures
        assert universe.untargeted_table.signatures == ref_g.signatures
        for thread in threads:
            thread.join()

    def test_no_workers_times_out_with_guidance(self, tmp_path):
        backend = self.queue_backend(tmp_path, wait_timeout=0.3)
        with pytest.raises(AnalysisError, match="repro worker"):
            backend.build_stuck_at(get_circuit("lion"))

    def test_poisoned_shard_surfaces_named_error(self, tmp_path):
        executor = QueueExecutor(
            queue_dir=str(tmp_path / "queue"),
            poll_interval=0.01,
            wait_timeout=60.0,
            max_attempts=2,
        )
        thread = drain_in_thread(tmp_path / "queue", idle_exit=1.0)
        with pytest.raises(AnalysisError, match="queue shard 0"):
            executor.submit([poisoned_task()])
        thread.join()

    def test_worker_killed_mid_shard_is_requeued(self, tmp_path):
        """Acceptance: an injected worker crash never loses the run.

        A subprocess worker claims the first shard and hard-exits while
        holding the lease (the ``REPRO_QUEUE_CRASH_AFTER_CLAIM`` test
        hook).  The lease expires, the shard is requeued, and a healthy
        worker finishes the build — bit-identical to the single-process
        tables.
        """
        queue_dir = tmp_path / "queue"
        backend = self.queue_backend(
            tmp_path, lease_timeout=0.5, wait_timeout=120.0
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        env["REPRO_QUEUE_CRASH_AFTER_CLAIM"] = "1"
        env.pop("REPRO_QUEUE_DIR", None)
        crasher = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "worker",
                "--queue", str(queue_dir),
                "--poll-interval", "0.01",
                "--idle-exit", "60",
            ],
            env=env,
        )
        result: dict = {}

        def submit() -> None:
            universe = FaultUniverse(
                get_circuit("lion"), backend=backend
            )
            result["f"] = universe.target_table.signatures
            result["g"] = universe.untargeted_table.signatures

        submitter = threading.Thread(target=submit, daemon=True)
        submitter.start()
        assert crasher.wait(timeout=60) == 42  # died holding a lease
        # Only now bring up the healthy drain loop: the crashed shard
        # must come back via lease expiry, not fresh-claim luck.
        healthy = drain_in_thread(
            queue_dir, idle_exit=3.0, lease_timeout=0.5
        )
        submitter.join(timeout=120)
        assert not submitter.is_alive()
        healthy.join()
        ref_f, ref_g = self.build_reference()
        assert result["f"] == ref_f.signatures
        assert result["g"] == ref_g.signatures
