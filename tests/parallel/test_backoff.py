"""Backoff schedule unit tests + the pinned sleep sequences of the
queue submitter and worker idle loops (the fixed-interval busy-wait
fix: idle polls back off geometrically, progress resets the schedule).
"""

from __future__ import annotations

import pytest

from repro.errors import AnalysisError
from repro.parallel import Backoff, QueueWorker, WorkQueue
from repro.parallel.cache import shard_key
from repro.parallel.executors import QueueExecutor
from repro.parallel.worker import ShardTask


class TestBackoff:
    def test_schedule_doubles_to_cap(self):
        b = Backoff(0.05, cap=1.0)
        assert [b.next() for _ in range(7)] == [
            0.05, 0.1, 0.2, 0.4, 0.8, 1.0, 1.0,
        ]

    def test_reset_restarts_schedule(self):
        b = Backoff(0.1, cap=2.0)
        assert b.next() == 0.1
        assert b.next() == 0.2
        b.reset()
        assert b.next() == 0.1

    def test_peek_does_not_advance(self):
        b = Backoff(0.25, cap=1.0)
        assert b.peek() == 0.25
        assert b.peek() == 0.25
        assert b.next() == 0.25
        assert b.peek() == 0.5

    def test_custom_factor(self):
        b = Backoff(1.0, cap=10.0, factor=3.0)
        assert [b.next() for _ in range(4)] == [1.0, 3.0, 9.0, 10.0]

    def test_factor_one_is_constant(self):
        b = Backoff(0.5, cap=0.5, factor=1.0)
        assert [b.next() for _ in range(3)] == [0.5, 0.5, 0.5]

    @pytest.mark.parametrize(
        "kwargs,match",
        [
            ({"initial": 0.0}, "initial delay must be > 0"),
            ({"initial": -1.0}, "initial delay must be > 0"),
            ({"initial": 0.5, "cap": 0.1}, "cap must be >="),
            ({"initial": 0.1, "factor": 0.5}, "factor must be >= 1"),
        ],
    )
    def test_validation(self, kwargs, match):
        with pytest.raises(AnalysisError, match=match):
            Backoff(**kwargs)

    def test_repr_mentions_schedule(self):
        assert "initial=0.05" in repr(Backoff(0.05))


def _task(circuit):
    return ShardTask(
        circuit=circuit,
        backend=None,
        kind="stuck_at",
        faults=(),
        base_signatures=(),
        shard_index=0,
    )


class TestWorkerIdleBackoff:
    """`QueueWorker.serve` sleeps the pinned geometric schedule while
    idle, instead of hammering the mount at poll_interval."""

    def test_idle_sleeps_follow_schedule(self, tmp_path, monkeypatch):
        from repro.parallel import workqueue

        sleeps: list[float] = []
        # Virtual idle clock: each fake sleep advances it, so idle_exit
        # trips after a known number of polls with no wall-clock waits.
        clock = {"now": 0.0}
        monkeypatch.setattr(
            workqueue.time, "monotonic", lambda: clock["now"]
        )

        def advancing_sleep(delay: float) -> None:
            sleeps.append(delay)
            clock["now"] += delay

        monkeypatch.setattr(workqueue, "_sleep", advancing_sleep)
        worker = QueueWorker(
            WorkQueue(tmp_path / "queue"), poll_interval=0.05
        )
        worker.serve(idle_exit=3.0)
        # Cumulative idle time at each check: 0, .05, .15, .35, .75,
        # 1.55, 2.55 — all under 3.0 — then 3.55 trips the exit.
        assert sleeps == [0.05, 0.1, 0.2, 0.4, 0.8, 1.0, 1.0]


class TestSubmitterBackoff:
    """`QueueExecutor.submit` polls on the pinned schedule and resets
    it when a result lands."""

    def test_submit_polls_follow_schedule(self, tmp_path, monkeypatch):
        from repro.bench_suite.randlogic import random_circuit
        from repro.parallel import executors

        circuit = random_circuit(3, num_inputs=3, num_gates=6)
        task = _task(circuit)
        key = shard_key(
            task.circuit, task.backend, task.kind, task.faults
        )
        queue = WorkQueue(tmp_path / "queue")
        sleeps: list[float] = []

        def sleep_then_complete(delay: float) -> None:
            sleeps.append(delay)
            if len(sleeps) == 4:
                # A worker finishes the shard mid-backoff; the next
                # poll picks it up and the loop exits.
                queue.results.put(key, [1, 2, 3])

        monkeypatch.setattr(executors, "_sleep", sleep_then_complete)
        executor = QueueExecutor(
            queue_dir=str(tmp_path / "queue"),
            poll_interval=0.05,
            wait_timeout=300.0,
        )
        outcomes = executor.submit([task])
        assert outcomes == [(0, [1, 2, 3])]
        assert sleeps == [0.05, 0.1, 0.2, 0.4]

    def test_submit_backoff_resets_on_progress(
        self, tmp_path, monkeypatch
    ):
        from repro.bench_suite.randlogic import random_circuit
        from repro.parallel import executors

        circuit = random_circuit(4, num_inputs=3, num_gates=6)
        task_a = _task(circuit)
        task_b = ShardTask(
            circuit=circuit,
            backend=None,
            kind="bridging",
            faults=(),
            base_signatures=(),
            shard_index=1,
        )
        key_a = shard_key(
            task_a.circuit, task_a.backend, task_a.kind, task_a.faults
        )
        key_b = shard_key(
            task_b.circuit, task_b.backend, task_b.kind, task_b.faults
        )
        queue = WorkQueue(tmp_path / "queue")
        sleeps: list[float] = []

        def staged_sleep(delay: float) -> None:
            sleeps.append(delay)
            if len(sleeps) == 3:
                queue.results.put(key_a, [1])
            if len(sleeps) == 5:
                queue.results.put(key_b, [2])

        monkeypatch.setattr(executors, "_sleep", staged_sleep)
        executor = QueueExecutor(
            queue_dir=str(tmp_path / "queue"),
            poll_interval=0.05,
            wait_timeout=300.0,
        )
        outcomes = sorted(executor.submit([task_a, task_b]))
        assert outcomes == [(0, [1]), (1, [2])]
        # Three idle polls (0.05, 0.1, 0.2), then key_a lands and the
        # schedule resets to 0.05 before the remaining idle polls.
        assert sleeps == [0.05, 0.1, 0.2, 0.05, 0.1]
