"""The TCP queue transport: framing, broker, executor, worker, theft.

Covers the wire protocol's own contract (framed pickles, version
checks, address resolution), the broker's dispatch/lease/steal state
machine, and the fault paths the acceptance criteria name: a worker
killed mid-shard costs one attempt and the run still completes; a
shard stolen mid-build double-completes as a duplicate, not a
conflict; a broker restarted mid-run is survived by reconnecting
submitters and workers; a poisoned shard parks with a clean
``AnalysisError`` naming it — every completion bit-identical to the
inline build.
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.bench_suite.registry import get_circuit
from repro.errors import AnalysisError
from repro.faults.stuck_at import collapsed_stuck_at_faults
from repro.faults.universe import FaultUniverse
from repro.faultsim.backends import ExhaustiveBackend, SerialBackend
from repro.parallel import (
    ParallelBackend,
    ShardTask,
    TcpExecutor,
    TcpWorker,
    shard_key,
)
from repro.parallel.netqueue import (
    BROKER_ENV,
    BROKER_SECRET_ENV,
    NET_FORMAT_VERSION,
    BackgroundBroker,
    broker_clear,
    broker_stats,
    recv_frame,
    resolve_broker,
    send_frame,
)

SRC = str(Path(__file__).resolve().parents[2] / "src")


def make_task(shard_index: int = 0, count: int = 4) -> ShardTask:
    circuit = get_circuit("lion")
    backend = ExhaustiveBackend()
    faults = collapsed_stuck_at_faults(circuit)
    lo = shard_index * count
    return ShardTask(
        circuit=circuit,
        backend=backend,
        kind="stuck_at",
        faults=tuple(faults[lo : lo + count]),
        base_signatures=tuple(backend.line_signatures(circuit)),
        shard_index=shard_index,
    )


def poisoned_task() -> ShardTask:
    # The serial engine is capped at 16 inputs, so this shard raises a
    # clean AnalysisError on every build attempt, on every worker.
    circuit = get_circuit("wide28")
    return ShardTask(
        circuit=circuit,
        backend=SerialBackend(),
        kind="stuck_at",
        faults=tuple(collapsed_stuck_at_faults(circuit)[:2]),
        base_signatures=None,
        shard_index=0,
    )


def worker_in_thread(
    address: str,
    tmp_path,
    name: str = "w",
    *,
    build_delay: float = 0.0,
    idle_exit: float = 10.0,
    use_cache: bool = False,
    lease_timeout: float = 30.0,
) -> tuple[TcpWorker, threading.Thread, dict]:
    """A real TCP drain loop in this process (no subprocess overhead)."""
    worker = TcpWorker(
        broker=address,
        worker_id=name,
        build_delay=build_delay,
        cache_dir=str(tmp_path / f"cache-{name}"),
        use_cache=use_cache,
        lease_timeout=lease_timeout,
    )
    out: dict = {}

    def serve() -> None:
        out["stats"] = worker.serve(idle_exit=idle_exit)

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    return worker, thread, out


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return int(probe.getsockname()[1])


class TestFraming:
    def test_roundtrip_over_socketpair(self):
        a, b = socket.socketpair()
        try:
            message = {"op": "build", "task": make_task(), "n": 3}
            send_frame(a, message)
            received = recv_frame(b)
            assert received["op"] == "build"
            assert received["n"] == 3
            # Object equality is too strong across a pickle boundary
            # (lazily-built circuit caches are dropped from payloads);
            # the contract is that the shipped task still addresses the
            # same shard.
            shipped, original = received["task"], message["task"]
            assert shipped.shard_index == original.shard_index
            assert shipped.faults == original.faults
            assert shard_key(
                shipped.circuit, shipped.backend, shipped.kind,
                shipped.faults,
            ) == shard_key(
                original.circuit, original.backend, original.kind,
                original.faults,
            )
        finally:
            a.close()
            b.close()

    def test_eof_raises_connection_error(self):
        a, b = socket.socketpair()
        a.close()
        try:
            with pytest.raises(ConnectionError):
                recv_frame(b)
        finally:
            b.close()

    def test_garbage_payload_is_a_clean_error(self):
        a, b = socket.socketpair()
        try:
            import struct

            a.sendall(struct.pack(">Q", 4) + b"xxxx")
            with pytest.raises(AnalysisError, match="undecodable"):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_oversized_frame_rejected(self):
        a, b = socket.socketpair()
        try:
            import struct

            a.sendall(struct.pack(">Q", 1 << 40))
            with pytest.raises(AnalysisError, match="oversized"):
                recv_frame(b)
        finally:
            a.close()
            b.close()


class _EvilPayload:
    """Pickles to a frame that would run ``os.system`` on load."""

    def __reduce__(self):
        return (os.system, ("echo pwned",))


class TestSecurity:
    def test_hostile_pickle_is_refused(self):
        import pickle
        import struct

        payload = pickle.dumps(_EvilPayload())
        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack(">Q", len(payload)) + payload)
            with pytest.raises(AnalysisError, match="forbidden global"):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_broker_drops_peer_sending_hostile_pickle(self):
        import pickle
        import struct

        payload = pickle.dumps(_EvilPayload())
        with BackgroundBroker() as broker:
            sock = socket.create_connection(
                (broker.host, broker.port), timeout=10.0
            )
            try:
                sock.sendall(
                    struct.pack(">Q", len(payload)) + payload
                )
                sock.settimeout(10.0)
                # The broker hangs up without ever unpickling the
                # frame; a rejection reply would mean it was parsed.
                with pytest.raises(ConnectionError):
                    recv_frame(sock)
            finally:
                sock.close()

    def test_shared_secret_roundtrip(self, monkeypatch):
        monkeypatch.setenv(BROKER_SECRET_ENV, "fleet-secret")
        a, b = socket.socketpair()
        try:
            send_frame(a, {"op": "ping"})
            assert recv_frame(b) == {"op": "ping"}
        finally:
            a.close()
            b.close()

    def test_mismatched_secret_rejected(self, monkeypatch):
        a, b = socket.socketpair()
        try:
            monkeypatch.setenv(BROKER_SECRET_ENV, "alpha")
            send_frame(a, {"op": "ping"})
            monkeypatch.setenv(BROKER_SECRET_ENV, "beta")
            with pytest.raises(AnalysisError, match=BROKER_SECRET_ENV):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_unauthenticated_sender_rejected(self, monkeypatch):
        a, b = socket.socketpair()
        try:
            monkeypatch.delenv(BROKER_SECRET_ENV, raising=False)
            send_frame(a, {"op": "ping"})
            monkeypatch.setenv(BROKER_SECRET_ENV, "fleet-secret")
            with pytest.raises(AnalysisError, match=BROKER_SECRET_ENV):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_end_to_end_with_shared_secret(self, tmp_path, monkeypatch):
        """Broker, worker, and submitter all authenticate every frame
        and the build still completes bit-identically."""
        monkeypatch.setenv(BROKER_SECRET_ENV, "fleet-secret")
        task = make_task()
        with BackgroundBroker() as broker:
            _worker, thread, out = worker_in_thread(
                broker.address, tmp_path, idle_exit=1.0
            )
            executor = TcpExecutor(
                broker=broker.address, wait_timeout=60.0
            )
            outcomes = executor.submit([task])
            thread.join(timeout=30)
            from repro.parallel.worker import run_shard

            _idx, expected = run_shard(task)
            assert outcomes == [(0, expected)]
            assert out["stats"]["built"] == 1


class TestResolution:
    def test_explicit_address(self):
        assert resolve_broker("host:1234") == ("host", 1234)

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(BROKER_ENV, "10.0.0.5:8766")
        assert resolve_broker(None) == ("10.0.0.5", 8766)

    def test_missing_address_errors(self, monkeypatch):
        monkeypatch.delenv(BROKER_ENV, raising=False)
        with pytest.raises(AnalysisError, match="--broker HOST:PORT"):
            resolve_broker(None)

    @pytest.mark.parametrize("bad", ["nocolon", ":1", "host:", "host:x"])
    def test_malformed_address_errors(self, bad):
        with pytest.raises(AnalysisError, match="HOST:PORT"):
            resolve_broker(bad)

    def test_executor_validation(self):
        with pytest.raises(AnalysisError, match="max_attempts"):
            TcpExecutor(broker="h:1", max_attempts=0)
        with pytest.raises(AnalysisError, match="wait_timeout"):
            TcpExecutor(broker="h:1", wait_timeout=0.0)

    def test_worker_validation(self, monkeypatch):
        monkeypatch.delenv("REPRO_STEAL_DELAY", raising=False)
        with pytest.raises(AnalysisError, match="lease_timeout"):
            TcpWorker(broker="h:1", lease_timeout=0.0)
        with pytest.raises(AnalysisError, match="build_delay"):
            TcpWorker(broker="h:1", build_delay=-1.0)

    def test_steal_delay_env_hook(self, monkeypatch):
        monkeypatch.setenv("REPRO_STEAL_DELAY", "0.75")
        assert TcpWorker(broker="h:1").build_delay == 0.75
        monkeypatch.setenv("REPRO_STEAL_DELAY", "banana")
        with pytest.raises(AnalysisError, match="REPRO_STEAL_DELAY"):
            TcpWorker(broker="h:1")

    def test_executor_is_hashable_cache_key_material(self):
        a = TcpExecutor(broker="h:1")
        b = TcpExecutor(broker="h:1")
        assert a == b and hash(a) == hash(b)
        assert a.describe() == "tcp"


class TestBrokerRoundtrip:
    def test_submit_build_result(self, tmp_path):
        tasks = [make_task(0), make_task(1)]
        with BackgroundBroker() as broker:
            _worker, thread, out = worker_in_thread(
                broker.address, tmp_path, idle_exit=1.0
            )
            executor = TcpExecutor(
                broker=broker.address, wait_timeout=60.0
            )
            outcomes = dict(executor.submit(tasks))
            assert sorted(outcomes) == [0, 1]
            from repro.parallel.worker import run_shard

            for task in tasks:
                _idx, expected = run_shard(task)
                assert outcomes[task.shard_index] == expected
            thread.join(timeout=30)
            assert out["stats"]["built"] == 2

    def test_resubmission_is_a_broker_cache_hit(self, tmp_path):
        task = make_task()
        with BackgroundBroker() as broker:
            _worker, thread, out = worker_in_thread(
                broker.address, tmp_path, idle_exit=1.0
            )
            executor = TcpExecutor(
                broker=broker.address, wait_timeout=60.0
            )
            first = executor.submit([task])
            thread.join(timeout=30)
            # No workers are attached now: the result must come from
            # the broker's result store, instantly.
            again = executor.submit([task])
            assert first == again
            stats = broker.stats()
            assert stats["counters"]["completed"] == 1
            assert out["stats"]["built"] == 1

    def test_worker_cache_hit_reports_skip(self, tmp_path):
        task = make_task()
        key = shard_key(
            task.circuit, task.backend, task.kind, task.faults
        )
        from repro.parallel import ShardCache
        from repro.parallel.worker import run_shard

        _idx, signatures = run_shard(task)
        cache_dir = tmp_path / "cache-warm"
        ShardCache(cache_dir).put(key, signatures)
        with BackgroundBroker() as broker:
            worker = TcpWorker(
                broker=broker.address,
                worker_id="warm",
                cache_dir=str(cache_dir),
                use_cache=True,
            )
            out: dict = {}
            thread = threading.Thread(
                target=lambda: out.update(
                    stats=worker.serve(idle_exit=1.0)
                ),
                daemon=True,
            )
            thread.start()
            executor = TcpExecutor(
                broker=broker.address, wait_timeout=60.0
            )
            assert executor.submit([task]) == [(0, signatures)]
            thread.join(timeout=30)
            assert out["stats"] == {
                "built": 0, "skipped": 1, "failed": 0, "stolen": 0,
            }

    def test_poisoned_shard_parks_with_named_error(self, tmp_path):
        with BackgroundBroker() as broker:
            _worker, thread, _out = worker_in_thread(
                broker.address, tmp_path, idle_exit=2.0
            )
            executor = TcpExecutor(
                broker=broker.address, wait_timeout=60.0, max_attempts=2,
            )
            with pytest.raises(AnalysisError, match="tcp shard 0"):
                executor.submit([poisoned_task()])
            stats = broker.stats()
            assert stats["counters"]["parked"] == 1
            assert len(stats["failed"]) == 1
            thread.join(timeout=30)

    def test_stats_and_clear_helpers(self, tmp_path):
        task = make_task()
        with BackgroundBroker() as broker:
            _worker, thread, _out = worker_in_thread(
                broker.address, tmp_path, idle_exit=1.0
            )
            executor = TcpExecutor(
                broker=broker.address, wait_timeout=60.0
            )
            executor.submit([task])
            thread.join(timeout=30)
            stats = broker_stats(broker.address)
            assert stats["counters"]["completed"] == 1
            assert stats["results"] == 1
            assert broker_clear(broker.address) == 1
            assert broker_stats(broker.address)["results"] == 0

    def test_unreachable_broker_is_a_clean_error(self):
        with pytest.raises(AnalysisError, match="cannot reach broker"):
            broker_stats(f"127.0.0.1:{free_port()}")

    def test_version_mismatch_rejected(self):
        with BackgroundBroker() as broker:
            sock = socket.create_connection(
                (broker.host, broker.port), timeout=10.0
            )
            try:
                send_frame(
                    sock,
                    {
                        "op": "submit",
                        "version": NET_FORMAT_VERSION + 1,
                        "shards": [],
                    },
                )
                reply = recv_frame(sock)
                assert reply["op"] == "rejected"
                assert "wire format" in reply["error"]
            finally:
                sock.close()

    def test_no_workers_times_out_with_guidance(self):
        with BackgroundBroker() as broker:
            executor = TcpExecutor(
                broker=broker.address, wait_timeout=0.5
            )
            with pytest.raises(
                AnalysisError, match="repro worker --broker"
            ):
                executor.submit([make_task()])


class TestFaultTolerance:
    def test_worker_death_mid_shard_requeues(self, tmp_path):
        """A worker that dies holding a lease costs one attempt; the
        shard is requeued to a healthy worker and completes."""
        tasks = [make_task(0), make_task(1)]
        with BackgroundBroker(lease_timeout=30.0) as broker:
            env = dict(os.environ)
            env["PYTHONPATH"] = SRC + os.pathsep + env.get(
                "PYTHONPATH", ""
            )
            env["REPRO_QUEUE_CRASH_AFTER_CLAIM"] = "1"
            env["REPRO_CACHE_DIR"] = str(tmp_path / "crash-cache")
            env.pop(BROKER_ENV, None)
            crasher = subprocess.Popen(
                [
                    sys.executable, "-m", "repro", "worker",
                    "--broker", broker.address,
                    "--idle-exit", "60",
                ],
                env=env,
            )
            result: dict = {}

            def submit() -> None:
                executor = TcpExecutor(
                    broker=broker.address, wait_timeout=120.0
                )
                result["outcomes"] = dict(executor.submit(tasks))

            submitter = threading.Thread(target=submit, daemon=True)
            submitter.start()
            assert crasher.wait(timeout=60) == 42  # died mid-shard
            # Only now bring up the healthy worker: the crashed shard
            # must come back via the dropped connection, not luck.
            _worker, thread, _out = worker_in_thread(
                broker.address, tmp_path, name="healthy", idle_exit=5.0
            )
            submitter.join(timeout=120)
            assert not submitter.is_alive()
            thread.join(timeout=30)
            from repro.parallel.worker import run_shard

            for task in tasks:
                _idx, expected = run_shard(task)
                assert result["outcomes"][task.shard_index] == expected
            assert broker.stats()["counters"]["requeues"] >= 1

    def test_steal_mid_build_double_completes(self, tmp_path):
        """A stale in-flight shard is duplicated to an idle worker;
        first completion wins and the loser is a duplicate, so the
        result is identical and nothing conflicts."""
        task = make_task()
        with BackgroundBroker(steal_after=0.2) as broker:
            # The straggler claims the only shard and sits on it.
            _slow, slow_thread, slow_out = worker_in_thread(
                broker.address, tmp_path, name="a-slow",
                build_delay=3.0, idle_exit=8.0,
            )
            executor = TcpExecutor(
                broker=broker.address, wait_timeout=120.0
            )
            submitted: dict = {}

            def submit() -> None:
                submitted["outcomes"] = executor.submit([task])

            submitter = threading.Thread(target=submit, daemon=True)
            submitter.start()
            time.sleep(0.5)  # straggler holds the lease, now stale
            _fast, fast_thread, fast_out = worker_in_thread(
                broker.address, tmp_path, name="b-fast", idle_exit=5.0
            )
            submitter.join(timeout=120)
            assert not submitter.is_alive()
            slow_thread.join(timeout=30)
            fast_thread.join(timeout=30)
            from repro.parallel.worker import run_shard

            _idx, expected = run_shard(task)
            assert submitted["outcomes"] == [(0, expected)]
            counters = broker.stats()["counters"]
            assert counters["steals"] >= 1
            assert counters["steal_completions"] >= 1
            assert counters["duplicates"] >= 1  # the straggler's late done
            assert fast_out["stats"]["stolen"] >= 1
            assert fast_out["stats"]["built"] >= 1
            assert slow_out["stats"]["built"] >= 1  # late, discarded

    def test_steal_disabled_waits_for_straggler(self, tmp_path):
        task = make_task()
        with BackgroundBroker(steal=False, steal_after=0.1) as broker:
            _slow, slow_thread, _slow_out = worker_in_thread(
                broker.address, tmp_path, name="a-slow",
                build_delay=1.0, idle_exit=5.0,
            )
            executor = TcpExecutor(
                broker=broker.address, wait_timeout=120.0
            )
            submitted: dict = {}

            def submit() -> None:
                submitted["outcomes"] = executor.submit([task])

            submitter = threading.Thread(target=submit, daemon=True)
            submitter.start()
            time.sleep(0.3)
            _fast, fast_thread, fast_out = worker_in_thread(
                broker.address, tmp_path, name="b-fast", idle_exit=2.0
            )
            submitter.join(timeout=120)
            slow_thread.join(timeout=30)
            fast_thread.join(timeout=30)
            assert broker.stats()["counters"]["steals"] == 0
            assert fast_out["stats"]["stolen"] == 0

    def test_broker_restart_mid_run_recovers(self, tmp_path):
        """Submitter and workers both reconnect to a restarted broker
        on the same port and the run completes bit-identically."""
        tasks = [make_task(0), make_task(1), make_task(2)]
        port = free_port()
        first = BackgroundBroker(port=port).start()
        address = first.address
        result: dict = {}

        def submit() -> None:
            executor = TcpExecutor(broker=address, wait_timeout=120.0)
            result["outcomes"] = dict(executor.submit(tasks))

        submitter = threading.Thread(target=submit, daemon=True)
        submitter.start()
        time.sleep(0.3)  # shards are submitted to the first broker
        first.stop()  # broker dies mid-run, queue state lost
        second = BackgroundBroker(port=port).start()
        try:
            # Workers attach to the restarted broker; the submitter's
            # reconnect loop re-submits its outstanding shards.
            _w, thread, _out = worker_in_thread(
                address, tmp_path, name="post-restart", idle_exit=8.0
            )
            submitter.join(timeout=120)
            assert not submitter.is_alive()
            thread.join(timeout=30)
            from repro.parallel.worker import run_shard

            for task in tasks:
                _idx, expected = run_shard(task)
                assert result["outcomes"][task.shard_index] == expected
        finally:
            second.stop()


class TestStateHygiene:
    """Connection-identity and lease bookkeeping under ugly peers."""

    @staticmethod
    def _wait_for(predicate, timeout=10.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if predicate():
                return
            time.sleep(0.05)
        raise AssertionError("condition not reached in time")

    def test_malformed_done_releases_builder_slot(self):
        """A 'done' whose signatures are not a list must free the
        builder slot and requeue the shard (one attempt charged), not
        wedge it behind a ghost lease."""
        task = make_task()
        key = shard_key(
            task.circuit, task.backend, task.kind, task.faults
        )
        with BackgroundBroker(max_builders=1) as broker:
            worker = socket.create_connection(
                (broker.host, broker.port), timeout=10.0
            )
            submitter = socket.create_connection(
                (broker.host, broker.port), timeout=10.0
            )
            try:
                send_frame(
                    worker,
                    {
                        "op": "register",
                        "version": NET_FORMAT_VERSION,
                        "worker": "clumsy",
                    },
                )
                send_frame(
                    submitter,
                    {
                        "op": "submit",
                        "version": NET_FORMAT_VERSION,
                        "shards": [
                            {"key": key, "task": task, "shard_index": 0}
                        ],
                    },
                )
                worker.settimeout(10.0)
                build = recv_frame(worker)
                assert build["op"] == "build"
                assert build["attempts"] == 0
                send_frame(
                    worker,
                    {"op": "done", "key": key, "signatures": None},
                )
                rebuilt = recv_frame(worker)
                assert rebuilt["op"] == "build"
                assert rebuilt["attempts"] == 1  # the bad report cost one
                from repro.parallel.worker import run_shard

                _idx, signatures = run_shard(task)
                send_frame(
                    worker,
                    {"op": "done", "key": key, "signatures": signatures},
                )
                submitter.settimeout(10.0)
                result = recv_frame(submitter)
                assert result["op"] == "result"
                assert result["signatures"] == signatures
                counters = broker.stats()["counters"]
                assert counters["duplicates"] == 1
                assert counters["requeues"] == 1
            finally:
                worker.close()
                submitter.close()

    def test_reconnect_supersede_keeps_new_connection(self):
        """The old connection's teardown must not deregister the fresh
        registration that superseded it under the same worker id."""
        task = make_task()
        with BackgroundBroker() as broker:
            first = socket.create_connection(
                (broker.host, broker.port), timeout=10.0
            )
            second = None
            submitter = None
            try:
                send_frame(
                    first,
                    {
                        "op": "register",
                        "version": NET_FORMAT_VERSION,
                        "worker": "w",
                    },
                )
                self._wait_for(
                    lambda: [
                        w["worker"]
                        for w in broker.stats()["workers"]
                    ]
                    == ["w"]
                )
                second = socket.create_connection(
                    (broker.host, broker.port), timeout=10.0
                )
                send_frame(
                    second,
                    {
                        "op": "register",
                        "version": NET_FORMAT_VERSION,
                        "worker": "w",
                    },
                )
                self._wait_for(
                    lambda: broker.stats()["counters"][
                        "workers_registered"
                    ]
                    == 2
                )
                # Now the superseded connection unwinds; its teardown
                # runs _drop_worker for id "w" but must leave the new
                # connection registered and dispatchable.
                first.close()
                time.sleep(0.3)
                assert [
                    w["worker"] for w in broker.stats()["workers"]
                ] == ["w"]
                submitter = socket.create_connection(
                    (broker.host, broker.port), timeout=10.0
                )
                key = shard_key(
                    task.circuit, task.backend, task.kind, task.faults
                )
                send_frame(
                    submitter,
                    {
                        "op": "submit",
                        "version": NET_FORMAT_VERSION,
                        "shards": [
                            {"key": key, "task": task, "shard_index": 0}
                        ],
                    },
                )
                second.settimeout(10.0)
                assert recv_frame(second)["op"] == "build"
            finally:
                first.close()
                if second is not None:
                    second.close()
                if submitter is not None:
                    submitter.close()

    def test_undecodable_broker_backs_off_and_stalls_cleanly(
        self, monkeypatch
    ):
        """A port that answers with garbage (wrong service) must fail
        via the stall deadline with escalating backoff sleeps between
        attempts — not spin connect/recv at full speed forever."""
        import struct

        monkeypatch.delenv(BROKER_SECRET_ENV, raising=False)
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(8)
        port = int(listener.getsockname()[1])
        stop = threading.Event()

        def garbage_server() -> None:
            while not stop.is_set():
                try:
                    conn, _ = listener.accept()
                except OSError:
                    return
                with conn:
                    try:
                        conn.sendall(struct.pack(">Q", 4) + b"zzzz")
                        conn.recv(1)  # linger until the client hangs up
                    except OSError:
                        pass

        server = threading.Thread(target=garbage_server, daemon=True)
        server.start()
        sleeps: list[float] = []
        monkeypatch.setattr(
            "repro.parallel.netqueue._sleep", sleeps.append
        )
        try:
            executor = TcpExecutor(
                broker=f"127.0.0.1:{port}", wait_timeout=0.5
            )
            with pytest.raises(AnalysisError, match="no progress"):
                executor.submit([make_task()])
            assert sleeps, "decode failures must back off, not spin"
            assert sleeps[:3] == [0.05, 0.1, 0.2]
        finally:
            stop.set()
            listener.close()
            server.join(timeout=10)

    def test_busy_worker_survives_disconnect_after_idle_exit(
        self, tmp_path
    ):
        """A worker older than idle_exit that loses its connection
        right after building must reconnect (its idle clock restarted
        by the recent build), not exit on the stale start time."""
        port = free_port()
        address = f"127.0.0.1:{port}"
        first = BackgroundBroker(port=port).start()
        second = None
        try:
            _worker, thread, out = worker_in_thread(
                address, tmp_path, name="long-lived", idle_exit=3.0
            )
            executor = TcpExecutor(broker=address, wait_timeout=60.0)
            time.sleep(2.0)  # most of the idle budget passes unused
            executor.submit([make_task(0)])  # restarts the idle clock
            time.sleep(1.5)  # lifetime > idle_exit, idle age ~1.5s
            first.stop()  # connection drops; worker must reconnect
            second = BackgroundBroker(port=port).start()
            outcomes = executor.submit([make_task(1)])
            assert [index for index, _sigs in outcomes] == [1]
            thread.join(timeout=30)
            assert out["stats"]["built"] == 2
        finally:
            first.stop()
            if second is not None:
                second.stop()


class TestEndToEnd:
    def test_universe_via_tcp_matches_inline(self, tmp_path):
        circuit = get_circuit("lion")
        with BackgroundBroker() as broker:
            _a, thread_a, _oa = worker_in_thread(
                broker.address, tmp_path, name="a", idle_exit=3.0
            )
            _b, thread_b, _ob = worker_in_thread(
                broker.address, tmp_path, name="b", idle_exit=3.0
            )
            backend = ParallelBackend(
                base=ExhaustiveBackend(),
                use_cache=False,
                executor=TcpExecutor(
                    broker=broker.address, wait_timeout=120.0
                ),
            )
            tcp = FaultUniverse(circuit, backend=backend)
            inline = FaultUniverse(circuit, backend=ExhaustiveBackend())
            assert (
                tcp.target_table.signatures
                == inline.target_table.signatures
            )
            assert (
                tcp.untargeted_table.signatures
                == inline.untargeted_table.signatures
            )
            thread_a.join(timeout=30)
            thread_b.join(timeout=30)

    def test_cli_queue_stats_against_live_broker(self, tmp_path, capsys):
        from repro.cli import main

        task = make_task()
        with BackgroundBroker() as broker:
            _w, thread, _out = worker_in_thread(
                broker.address, tmp_path, idle_exit=1.0
            )
            TcpExecutor(
                broker=broker.address, wait_timeout=60.0
            ).submit([task])
            thread.join(timeout=30)
            assert main(["queue", "info", "--broker", broker.address]) == 0
            info = capsys.readouterr().out
            assert f"broker: {broker.address}" in info
            assert "steal=on" in info
            assert main(["queue", "stats", "--broker", broker.address]) == 0
            stats_text = capsys.readouterr().out
            assert "counters:" in stats_text
            assert "completed=1" in stats_text
            assert main(["queue", "clear", "--broker", broker.address]) == 0
            assert "removed 1" in capsys.readouterr().out

    def test_cli_rejects_queue_and_broker_together(self, tmp_path, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "queue", "info",
                    "--queue", str(tmp_path / "q"),
                    "--broker", "h:1",
                ]
            )
            == 2
        )
        assert "mutually exclusive" in capsys.readouterr().err
