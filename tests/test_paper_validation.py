"""End-to-end validation of the paper's claims on suite circuits.

These tests assert the *qualitative results* of the paper (its headline
claims), circuit by circuit, on this repository's reconstruction of the
benchmark suite:

1. Table 1 (exact): covered in tests/bench_suite/test_example.py.
2. Table 2 shape: high worst-case coverage at n=1, monotone in n; the
   small classic machines reach 100% within n <= 10.
3. Table 3 shape: the heavy circuits (keyb-class) have faults that no
   10-detection test set is guaranteed to detect; the dvram-class
   circuits additionally have nmin >= 100 tails and flat coverage curves.
4. Table 5 bridge: p(n, g) = 1 for n >= nmin(g); most hard faults are
   still detected with high probability, but low-probability stragglers
   exist.
5. Table 6 claim: Definition 2 increases detection probabilities at
   equal n.
6. The motivating premise: compact n-detection test-set size grows
   roughly linearly in n.
"""

from __future__ import annotations

import pytest

from repro.atpg.ndetect import greedy_ndetection_set
from repro.core.average_case import AverageCaseAnalysis
from repro.core.procedure1 import build_random_ndetection_sets
from repro.experiments.common import get_universe, get_worst_case

SMALL_CLASSICS = ["lion", "train4", "dk27", "bbtas", "mc", "modulo12"]


class TestTable2Shape:
    @pytest.mark.parametrize("name", SMALL_CLASSICS)
    def test_small_machines_reach_full_coverage_by_10(self, name):
        wc = get_worst_case(name)
        assert wc.fraction_within(10) == 1.0

    @pytest.mark.parametrize("name", SMALL_CLASSICS + ["beecount", "s8"])
    def test_high_coverage_at_n1(self, name):
        """Large percentages of G are detected by any 1-detection set."""
        wc = get_worst_case(name)
        assert wc.fraction_within(1) >= 0.80

    @pytest.mark.parametrize("name", SMALL_CLASSICS)
    def test_monotone_curves(self, name):
        wc = get_worst_case(name)
        curve = wc.coverage_curve([1, 2, 3, 4, 5, 10])
        assert curve == sorted(curve)


class TestTable3Shape:
    def test_bbara_class_has_tail(self):
        """bbara-class circuits have faults with nmin >= 11 but none
        needing nmin >= 100 (paper: 21 faults >= 11, 0 >= 100)."""
        wc = get_worst_case("bbara")
        assert wc.count_at_least(11) > 0
        assert wc.count_at_least(100) == 0

    def test_small_circuits_have_no_tail(self):
        for name in SMALL_CLASSICS:
            assert get_worst_case(name).count_at_least(11) == 0

    def test_tail_counts_nested(self):
        wc = get_worst_case("bbara")
        assert (
            wc.count_at_least(100)
            <= wc.count_at_least(20)
            <= wc.count_at_least(11)
        )


class TestAverageCaseBridge:
    @pytest.fixture(scope="class")
    def bbara(self):
        universe = get_universe("bbara")
        wc = get_worst_case("bbara")
        family = build_random_ndetection_sets(
            universe.target_table, n_max=10, num_sets=100, seed=2005
        )
        return universe, wc, family

    def test_guarantee_never_violated(self, bbara):
        universe, wc, family = bbara
        avg = AverageCaseAnalysis(family, universe.untargeted_table)
        for rec in wc.records:
            if rec.nmin is None or rec.nmin > 10:
                continue
            assert avg.detection_probability(rec.nmin, rec.fault_index) == 1.0

    def test_hard_faults_mostly_high_probability(self, bbara):
        """Paper: 'some of the faults ... have very high probabilities of
        being detected by such a test set'."""
        universe, wc, family = bbara
        hard = wc.indices_at_least(11)
        avg = AverageCaseAnalysis(
            family, universe.untargeted_table, fault_indices=hard
        )
        probs = avg.probabilities(10)
        assert sum(1 for p in probs if p >= 0.8) >= len(probs) * 0.5

    def test_probabilities_monotone_in_n(self, bbara):
        universe, wc, family = bbara
        hard = wc.indices_at_least(11)
        avg = AverageCaseAnalysis(
            family, universe.untargeted_table, fault_indices=hard
        )
        for j in hard[:10]:
            series = [
                avg.detection_probability(n, j) for n in range(1, 11)
            ]
            assert series == sorted(series)


class TestDefinition2Claim:
    def test_def2_improves_detection_probability(self):
        """Table 6's claim: the stricter counting shifts probability mass
        upward at equal n.  The effect is measured where the paper does —
        at n = 10 on the faults not guaranteed by a 10-detection set
        (at smaller n / softer fault populations it drowns in sampling
        noise; seeds are fixed to keep this deterministic)."""
        universe = get_universe("bbara")
        wc = get_worst_case("bbara")
        hard = wc.indices_at_least(11)
        assert hard, "bbara lost its nmin >= 11 tail"
        means = {}
        for counting in ("def1", "def2"):
            family = build_random_ndetection_sets(
                universe.target_table,
                n_max=10,
                num_sets=100,
                seed=17,
                counting=counting,
            )
            avg = AverageCaseAnalysis(
                family, universe.untargeted_table, fault_indices=hard
            )
            probs = avg.probabilities(10)
            means[counting] = sum(probs) / len(probs)
        assert means["def2"] >= means["def1"] - 1e-9


class TestLinearGrowthPremise:
    @pytest.mark.parametrize("name", ["lion", "bbtas", "mc"])
    def test_compact_set_size_roughly_linear(self, name):
        universe = get_universe(name)
        sizes = [
            len(greedy_ndetection_set(universe.target_table, n))
            for n in (1, 2, 4, 8)
        ]
        assert sizes == sorted(sizes)
        # Doubling n should not much more than double the size.
        for prev, cur in zip(sizes, sizes[1:], strict=False):
            assert cur <= 2.5 * prev + 4
