"""FaultUniverse: lazy building, caching, summary."""

from __future__ import annotations

from repro.faults.universe import FaultUniverse


class TestUniverse:
    def test_tables_cached(self, example_circuit):
        u = FaultUniverse(example_circuit)
        assert u.target_table is u.target_table
        assert u.untargeted_table is u.untargeted_table
        assert u.base_signatures is u.base_signatures

    def test_target_faults_are_collapsed(self, example_universe):
        assert len(example_universe.target_faults) == 16

    def test_untargeted_table_detectable_only(self, example_universe):
        assert all(
            sig for sig in example_universe.untargeted_table.signatures
        )

    def test_raw_untargeted_universe(self, example_universe):
        assert len(example_universe.untargeted_faults) == 12

    def test_summary(self, example_universe):
        s = example_universe.summary()
        assert s["target_faults"] == 16
        assert s["untargeted_faults"] == 10
        assert s["inputs"] == 4
        assert s["gates"] == 3

    def test_shared_signatures(self, example_circuit):
        """Both tables must be built from the same base signatures."""
        u = FaultUniverse(example_circuit)
        base = u.base_signatures
        _ = u.target_table
        _ = u.untargeted_table
        assert u.base_signatures is base
