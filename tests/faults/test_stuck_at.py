"""Stuck-at universe and collapsing, anchored on the paper's example."""

from __future__ import annotations

import pytest

from repro.circuit.builder import CircuitBuilder
from repro.circuit.gate import GateType
from repro.errors import FaultError
from repro.faults.stuck_at import (
    StuckAtFault,
    all_stuck_at_faults,
    collapsed_stuck_at_faults,
    dominance_collapsed_faults,
    equivalence_classes,
)
from repro.faultsim.detection import DetectionTable


class TestUniverse:
    def test_full_universe_size(self, example_circuit):
        assert len(all_stuck_at_faults(example_circuit)) == 22

    def test_bad_value_rejected(self):
        with pytest.raises(FaultError):
            StuckAtFault(0, 2)

    def test_name(self, example_circuit):
        f = StuckAtFault(example_circuit.lid_of("9"), 1)
        assert f.name(example_circuit) == "9/1"


class TestEquivalenceClasses:
    def test_example_classes(self, example_circuit):
        c = example_circuit
        classes = equivalence_classes(c)
        named = [
            {f.name(c) for f in members} for members in classes
        ]
        # The three published multi-fault classes.
        assert {"1/0", "5/0", "9/0"} in named
        assert {"6/0", "7/0", "10/0"} in named
        assert {"4/1", "8/1", "11/1"} in named
        # 16 classes total (22 faults - 6 merged).
        assert len(classes) == 16

    def test_classes_partition_universe(self, example_circuit):
        classes = equivalence_classes(example_circuit)
        flat = [f for members in classes for f in members]
        assert len(flat) == 22
        assert len(set(flat)) == 22

    def test_equivalent_faults_same_detection_set(self, c17_circuit):
        """Every fault in a class has the same T(f) — the defining property."""
        classes = equivalence_classes(c17_circuit)
        for members in classes:
            if len(members) == 1:
                continue
            table = DetectionTable.for_stuck_at(c17_circuit, faults=members)
            assert len(set(table.signatures)) == 1, [
                f.name(c17_circuit) for f in members
            ]

    def test_equivalence_sound_on_example(self, example_circuit):
        classes = equivalence_classes(example_circuit)
        for members in classes:
            table = DetectionTable.for_stuck_at(
                example_circuit, faults=members
            )
            assert len(set(table.signatures)) == 1


class TestCollapsedList:
    def test_paper_order(self, example_circuit):
        c = example_circuit
        collapsed = collapsed_stuck_at_faults(c)
        names = [f.name(c) for f in collapsed]
        assert names == [
            "1/1", "2/0", "2/1", "3/0", "3/1", "4/0", "5/1", "6/1",
            "7/1", "8/0", "9/0", "9/1", "10/0", "10/1", "11/0", "11/1",
        ]

    def test_branch_of_single_fanout_stem_collapses(self):
        b = CircuitBuilder("c")
        b.input("a")
        b.input("x")
        b.branch("a1", of="a")  # single branch: equivalent to stem
        b.gate("g", GateType.AND, ["a1", "x"])
        b.output("g")
        c = b.build(auto_branch=False)
        collapsed = collapsed_stuck_at_faults(c)
        names = {f.name(c) for f in collapsed}
        # a/0 ≡ a1/0 ≡ g/0 and a/1 ≡ a1/1: neither a fault survives.
        assert "a/0" not in names
        assert "a/1" not in names

    def test_not_chain_collapses_fully(self, tiny_not_chain):
        collapsed = collapsed_stuck_at_faults(tiny_not_chain)
        # a/0≡n1/1≡out/0 and a/1≡n1/0≡out/1: 6 faults -> 2 classes.
        assert len(collapsed) == 2

    def test_xor_has_no_equivalences(self, xor_tree_circuit):
        c = xor_tree_circuit
        # Only fanout-free-buffer/branch rules could merge; xor_tree(2) has
        # no fanout, so all 2*lines faults survive.
        assert len(collapsed_stuck_at_faults(c)) == 2 * len(c.lines)


class TestDominance:
    def test_dominance_is_subset_of_equivalence_collapse(self, example_circuit):
        eq = set(collapsed_stuck_at_faults(example_circuit))
        dom = set(dominance_collapsed_faults(example_circuit))
        assert dom < eq

    def test_example_drops_expected(self, example_circuit):
        c = example_circuit
        dom = {f.name(c) for f in dominance_collapsed_faults(c)}
        # AND gate 9: output s-a-1 dominated by 1/1 and 5/1.
        assert "9/1" not in dom
        # OR gate 11: output s-a-0 dominated by 8/0 and 4/0.
        assert "11/0" not in dom

    def test_dominated_faults_covered(self, example_circuit):
        """Any test set detecting all dominance-collapsed faults detects
        every equivalence-collapsed fault (the defining guarantee)."""
        c = example_circuit
        eq_table = DetectionTable.for_stuck_at(
            c, faults=collapsed_stuck_at_faults(c)
        )
        dom_faults = dominance_collapsed_faults(c)
        dom_table = DetectionTable.for_stuck_at(c, faults=dom_faults)
        # Build a minimal test set hitting each dominance fault once.
        test_sig = 0
        for sig in dom_table.signatures:
            if sig and not (sig & test_sig):
                test_sig |= sig & -sig
        for sig in eq_table.signatures:
            if sig:
                assert sig & test_sig, "dominated fault escaped"
