"""Gate-exhaustive fault model: universe, detection, analysis plug-in."""

from __future__ import annotations

import pytest

from repro.core.worst_case import WorstCaseAnalysis
from repro.errors import FaultError
from repro.faults.cell_aware import (
    GateExhaustiveFault,
    gate_exhaustive_detection_signature,
    gate_exhaustive_faults,
    gate_exhaustive_table,
)
from repro.faults.universe import FaultUniverse
from repro.logic.bitops import all_ones_mask, set_bits
from repro.simulation.exhaustive import line_signatures
from repro.simulation.twoval import simulate_vector


class TestUniverse:
    def test_example_counts(self, example_circuit):
        faults = gate_exhaustive_faults(example_circuit)
        # 3 two-input gates x 4 patterns each.
        assert len(faults) == 12

    def test_max_arity_filter(self, example_circuit):
        assert gate_exhaustive_faults(example_circuit, max_arity=1) == []

    def test_name(self, example_circuit):
        f = GateExhaustiveFault(example_circuit.lid_of("9"), 0b10)
        assert f.name(example_circuit) == "9[10]"

    def test_negative_pattern_rejected(self):
        with pytest.raises(FaultError):
            GateExhaustiveFault(0, -1)


class TestDetection:
    def test_against_manual_simulation(self, example_circuit):
        """Cross-check T(g) against an explicit two-pass simulation."""
        c = example_circuit
        sigs = line_signatures(c)
        mask = all_ones_mask(c.num_inputs)
        for fault in gate_exhaustive_faults(c):
            det = gate_exhaustive_detection_signature(c, sigs, fault, mask)
            line = c.lines[fault.lid]
            arity = len(line.fanin)
            for v in range(16):
                good = simulate_vector(c, v)
                pattern = 0
                for src in line.fanin:
                    pattern = (pattern << 1) | good[src]
                if pattern != fault.pattern:
                    expected = False
                else:
                    faulty = simulate_vector(
                        c, v, forced={fault.lid: good[fault.lid] ^ 1}
                    )
                    expected = any(
                        good[o] != faulty[o] for o in c.outputs
                    )
                assert bool((det >> v) & 1) == expected, (
                    fault.name(c), v,
                )
            assert arity == 2

    def test_known_fault(self, example_circuit):
        """9 = AND(1,5): flipping its output on pattern 11 is detected on
        exactly the vectors where 1=1 and 2=1 (9 is an output)."""
        c = example_circuit
        sigs = line_signatures(c)
        mask = all_ones_mask(4)
        fault = GateExhaustiveFault(c.lid_of("9"), 0b11)
        det = gate_exhaustive_detection_signature(c, sigs, fault, mask)
        assert set_bits(det) == [12, 13, 14, 15]

    def test_pattern_width_guard(self, example_circuit):
        c = example_circuit
        sigs = line_signatures(c)
        with pytest.raises(FaultError, match="too wide"):
            gate_exhaustive_detection_signature(
                c, sigs, GateExhaustiveFault(c.lid_of("9"), 0b100),
                all_ones_mask(4),
            )


class TestTableIntegration:
    def test_table_builds_and_filters(self, example_circuit):
        table = gate_exhaustive_table(example_circuit)
        assert len(table) > 0
        assert all(sig for sig in table.signatures)

    def test_plugs_into_worst_case(self, example_circuit):
        universe = FaultUniverse(example_circuit)
        ge_table = gate_exhaustive_table(example_circuit)
        analysis = WorstCaseAnalysis(universe.target_table, ge_table)
        assert len(analysis) == len(ge_table)
        # Every gate-exhaustive fault overlaps some stuck-at fault here.
        assert all(r.nmin is not None for r in analysis.records)

    def test_union_of_patterns_is_gate_flip(self, example_circuit):
        """The four pattern faults of a gate partition its activation:
        their T(g) sets union to the detection set of 'output inverted
        under some pattern', and are pairwise disjoint in activation."""
        c = example_circuit
        table = gate_exhaustive_table(c, drop_undetectable=False)
        by_gate: dict[int, list[int]] = {}
        for fault, sig in zip(table.faults, table.signatures, strict=True):
            by_gate.setdefault(fault.lid, []).append(sig)
        for lid, sigs_list in by_gate.items():
            # Activations are disjoint, so detection sets are too.
            union = 0
            total = 0
            for sig in sigs_list:
                assert (union & sig) == 0
                union |= sig
                total += sig.bit_count()
            assert union.bit_count() == total
