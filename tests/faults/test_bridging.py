"""Four-way bridging universe: sites, orientation order, feedback filter."""

from __future__ import annotations

import pytest

from repro.circuit.builder import CircuitBuilder
from repro.circuit.gate import GateType
from repro.errors import FaultError
from repro.faults.bridging import (
    BridgingFault,
    bridging_pair_sites,
    four_way_bridging_faults,
)


class TestFaultObject:
    def test_name(self, example_circuit):
        g = BridgingFault(
            example_circuit.lid_of("9"), 0, example_circuit.lid_of("10"), 1
        )
        assert g.name(example_circuit) == "(9,0,10,1)"

    def test_rejects_same_line(self):
        with pytest.raises(FaultError):
            BridgingFault(3, 0, 3, 1)

    def test_rejects_bad_values(self):
        with pytest.raises(FaultError):
            BridgingFault(1, 2, 2, 0)


class TestSites:
    def test_example_sites(self, example_circuit):
        c = example_circuit
        pairs = bridging_pair_sites(c)
        names = [
            (c.lines[a].name, c.lines[b].name) for a, b in pairs
        ]
        assert names == [("9", "10"), ("9", "11"), ("10", "11")]

    def test_only_multi_input_gates(self):
        b = CircuitBuilder("c")
        b.input("a")
        b.input("x")
        b.gate("n", GateType.NOT, ["a"])     # single-input: not a site
        b.gate("g", GateType.AND, ["n", "x"])
        b.output("g")
        c = b.build()
        assert bridging_pair_sites(c) == []  # only one multi-input gate

    def test_feedback_pairs_excluded(self):
        """g2 is in g1's fanout: the (g1, g2) bridge would be feedback."""
        b = CircuitBuilder("c")
        b.input("a")
        b.input("x")
        b.input("y")
        b.gate("g1", GateType.AND, ["a", "x"])
        b.gate("g2", GateType.OR, ["g1", "y"])
        b.output("g2")
        c = b.build()
        assert bridging_pair_sites(c) == []

    def test_parallel_gates_kept(self, majority_circuit):
        c = majority_circuit
        pairs = bridging_pair_sites(c)
        names = {
            tuple(sorted((c.lines[a].name, c.lines[b].name)))
            for a, b in pairs
        }
        # ab, bc, ac are pairwise bridgeable; each with maj would be feedback.
        assert names == {("ab", "bc"), ("ab", "ac"), ("ac", "bc")}


class TestFourWay:
    def test_orientation_order(self, example_circuit):
        faults = four_way_bridging_faults(example_circuit)
        names = [f.name(example_circuit) for f in faults[:4]]
        assert names == [
            "(9,0,10,1)",
            "(9,1,10,0)",
            "(10,0,9,1)",
            "(10,1,9,0)",
        ]

    def test_four_per_pair(self, example_circuit):
        pairs = bridging_pair_sites(example_circuit)
        faults = four_way_bridging_faults(example_circuit)
        assert len(faults) == 4 * len(pairs)

    def test_all_distinct(self, example_circuit):
        faults = four_way_bridging_faults(example_circuit)
        assert len(set(faults)) == len(faults)
