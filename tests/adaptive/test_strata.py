"""Strata plans: exact partitions, sampling, allocation, estimators."""

from __future__ import annotations

import random

import pytest

from repro.adaptive.strata import (
    StratifiedVectorUniverse,
    build_bridging_strata,
    neyman_allocation,
    stratified_interval,
)
from repro.bench_suite.example import xor_tree
from repro.bench_suite.randlogic import random_circuit
from repro.errors import AnalysisError
from repro.faults.universe import FaultUniverse
from repro.faultsim.detection import DetectionTable
from repro.simulation.twoval import simulate_vector


@pytest.fixture(scope="module")
def circuit():
    return random_circuit(3, num_inputs=6, num_gates=14)


@pytest.fixture(scope="module")
def plan(circuit):
    return build_bridging_strata(
        circuit, max_site_support=6, max_support=6, rare_threshold=0.3
    )


class TestPlanStructure:
    def test_partitions_the_universe(self, circuit, plan):
        assert plan.num_strata >= 2
        assert sum(s.population for s in plan.strata) == 1 << 6
        seen = set()
        for s in plan.strata:
            assert not seen & set(s.projections)
            seen |= set(s.projections)

    def test_stratum_of_matches_decision_list(self, circuit, plan):
        # Brute force over all of U: the first active predicate (in
        # plan order) decides the stratum; no active predicate -> bulk.
        for v in range(1 << 6):
            values = simulate_vector(circuit, v)
            expected = plan.num_strata - 1  # bulk
            for i, pred in enumerate(plan.predicates):
                if (
                    values[pred.line_a] == pred.value_a
                    and values[pred.line_b] == pred.value_b
                ):
                    expected = i
                    break
            assert plan.stratum_of(v) == expected, f"vector {v}"

    def test_exact_activation_probabilities(self, circuit, plan):
        space = 1 << 6
        for pred in plan.predicates:
            active = 0
            for v in range(space):
                values = simulate_vector(circuit, v)
                if (
                    values[pred.line_a] == pred.value_a
                    and values[pred.line_b] == pred.value_b
                ):
                    active += 1
            assert pred.probability == active / space

    def test_predicate_touches_exclude_bulk(self, plan):
        bulk = plan.num_strata - 1
        assert len(plan.predicate_touches) == len(plan.predicates)
        for touches in plan.predicate_touches:
            assert touches  # every kept predicate owns its stratum
            assert bulk not in touches

    def test_covered_fault_strata_bound_detection(self, circuit, plan):
        # A covered fault's detecting vectors all lie in its touched
        # strata (detection requires activation).
        universe = FaultUniverse(circuit)
        table = universe.untargeted_table
        index_of = {g: j for j, g in enumerate(table.faults)}
        checked = 0
        for fault, touched in plan.covered_fault_strata().items():
            j = index_of.get(fault)
            if j is None:
                continue
            for v in table.detecting_vectors(j):
                assert plan.stratum_of(v) in touched
            checked += 1
        assert checked > 0

    def test_draws_land_in_their_stratum(self, plan):
        rng = random.Random(7)
        for h in range(plan.num_strata):
            for _ in range(20):
                v = plan.draw_from_stratum(h, rng)
                assert plan.stratum_of(v) == h

    def test_stratum_cubes_cover_the_stratum(self, plan):
        for h in range(plan.num_strata):
            cubes = plan.stratum_cubes(h)
            members = {
                v
                for cube in cubes
                for v in cube.completions()
            }
            expected = {
                v
                for v in range(1 << 6)
                if plan.stratum_of(v) == h
            }
            assert members == expected

    def test_no_rare_sites_degenerates_to_bulk(self):
        # xor_tree has no multi-input-gate bridging pairs of interest
        # with rare activation below a tiny threshold.
        plan = build_bridging_strata(
            xor_tree(), rare_threshold=1e-9
        )
        assert plan.num_strata == 1
        assert plan.strata[0].population == 1 << xor_tree().num_inputs

    def test_bound_validation(self, circuit):
        with pytest.raises(AnalysisError, match="max_site_support"):
            build_bridging_strata(circuit, max_site_support=0)
        with pytest.raises(AnalysisError, match="max_strata"):
            build_bridging_strata(circuit, max_strata=1)
        with pytest.raises(AnalysisError, match="rare_threshold"):
            build_bridging_strata(circuit, rare_threshold=0.0)


class TestNeymanAllocation:
    def test_sums_and_caps(self, plan):
        m = plan.num_strata
        sigmas = [0.5] * m
        drawn = [0] * m
        alloc = neyman_allocation(plan, 32, sigmas, drawn)
        assert sum(alloc) == 32
        assert all(
            a <= s.population for a, s in zip(alloc, plan.strata, strict=True)
        )
        # Every open stratum gets at least one draw (importance floor).
        assert all(a >= 1 for a in alloc)

    def test_deterministic(self, plan):
        m = plan.num_strata
        sigmas = [0.1 * (h + 1) for h in range(m)]
        drawn = [1] * m
        a = neyman_allocation(plan, 17, sigmas, drawn)
        b = neyman_allocation(plan, 17, sigmas, drawn)
        assert a == b

    def test_respects_remaining_population(self, plan):
        m = plan.num_strata
        drawn = [s.population for s in plan.strata]  # all exhausted
        alloc = neyman_allocation(plan, 10, [0.5] * m, drawn)
        assert alloc == [0] * m

    def test_total_clamped_to_room(self, plan):
        m = plan.num_strata
        space = sum(s.population for s in plan.strata)
        alloc = neyman_allocation(plan, space + 100, [0.5] * m, [0] * m)
        assert sum(alloc) == space

    def test_validation(self, plan):
        with pytest.raises(AnalysisError, match="total"):
            neyman_allocation(plan, -1, [0.5], [0])
        with pytest.raises(AnalysisError, match="per stratum"):
            neyman_allocation(plan, 4, [0.5], [0])

    def test_weights_favor_high_variance_strata(self, plan):
        # The lone high-variance stratum is drained to its population
        # cap before the near-zero-variance peers absorb the rest.
        m = plan.num_strata
        sigmas = [1e-9] * m
        sigmas[0] = 0.5
        alloc = neyman_allocation(plan, 24, sigmas, [0] * m)
        assert alloc[0] == min(24, plan.strata[0].population)


class TestStratifiedEstimator:
    def _draw(self, plan, per_stratum, seed):
        rng = random.Random(seed)
        seen: set[int] = set()
        for h, s in enumerate(plan.strata):
            quota = min(per_stratum, s.population)
            got = 0
            while got < quota:
                v = plan.draw_from_stratum(h, rng)
                if v in seen:
                    continue
                seen.add(v)
                got += 1
        return StratifiedVectorUniverse(
            plan.num_inputs, tuple(sorted(seen)), plan=plan
        )

    def test_full_coverage_is_exact(self, circuit, plan):
        universe = self._draw(plan, 1 << 6, seed=1)
        assert universe.size == 1 << 6
        exact = FaultUniverse(circuit).untargeted_table
        table = DetectionTable.for_bridging(circuit, universe=universe)
        for j in range(len(table)):
            est = table.count_estimate(j)
            assert est.low == est.estimate == est.high
            # Per-vector identity: full coverage = the exact count.
            assert est.estimate == exact.counts()[
                exact.faults.index(table.faults[j])
            ]

    def test_estimates_unbiased_over_seeds(self, circuit, plan):
        exact_table = FaultUniverse(circuit).untargeted_table
        sums = [0.0] * len(exact_table)
        seeds = range(40)
        for seed in seeds:
            universe = self._draw(plan, 6, seed=seed)
            table = DetectionTable.for_bridging(
                circuit,
                faults=list(exact_table.faults),
                universe=universe,
                drop_undetectable=False,
            )
            for j, est in enumerate(table.estimated_counts()):
                sums[j] += est
        exact = exact_table.counts()
        for j in range(len(exact)):
            mean = sums[j] / len(seeds)
            # Calibrated: worst |mean - exact| over these seeds is ~2.1
            # on the 64-vector universe; 4.0 leaves slack.
            assert abs(mean - exact[j]) < 4.0, (
                f"fault {j}: mean {mean} vs exact {exact[j]}"
            )

    def test_intervals_cover_the_exact_count(self, circuit, plan):
        exact_table = FaultUniverse(circuit).untargeted_table
        exact = exact_table.counts()
        covered = 0
        total = 0
        for seed in range(20):
            universe = self._draw(plan, 8, seed=100 + seed)
            table = DetectionTable.for_bridging(
                circuit,
                faults=list(exact_table.faults),
                universe=universe,
                drop_undetectable=False,
            )
            for j in range(len(table)):
                est = table.count_estimate(j, confidence=0.95)
                total += 1
                if est.covers(exact[j]):
                    covered += 1
        # 95% nominal; the smoothed variance makes it conservative.
        assert covered / total >= 0.9

    def test_interval_function_matches_universe_dispatch(
        self, circuit, plan
    ):
        universe = self._draw(plan, 6, seed=5)
        table = DetectionTable.for_bridging(circuit, universe=universe)
        sig = table.signatures[0]
        assert (
            stratified_interval(universe, sig, 0.95)
            == universe.interval_for_signature(sig, 0.95)
        )

    def test_worst_case_nmin_estimates_use_stratified_weights(
        self, circuit, plan
    ):
        # Regression (code review): estimated_nmin_values used to apply
        # the uniform |U|/K scale to stratified samples.  Each record's
        # |U|-scale estimate must come from the witness's exclusive
        # detection set through the universe's own (weighted) estimator.
        from repro.core.worst_case import WorstCaseAnalysis

        universe = self._draw(plan, 6, seed=9)
        target = DetectionTable.for_stuck_at(circuit, universe=universe)
        untargeted = DetectionTable.for_bridging(
            circuit, universe=universe
        )
        worst = WorstCaseAnalysis(target, untargeted)
        values = worst.estimated_nmin_values()
        checked = 0
        for record, value in zip(worst.records, values, strict=True):
            if record.nmin is None:
                assert value is None
                continue
            exclusive = (
                target.signatures[record.witness]
                & ~untargeted.signatures[record.fault_index]
                & universe.mask
            )
            assert value == universe.estimate_signature(exclusive) + 1.0
            checked += 1
        assert checked > 0
        worst_value = max(v for v in values if v is not None)
        assert worst.estimated_guaranteed_n() == worst_value

    def test_rejects_plan_mismatch(self, plan):
        with pytest.raises(AnalysisError, match="plan"):
            StratifiedVectorUniverse(6, (1, 2, 3), plan=None)
        with pytest.raises(AnalysisError, match="input count"):
            StratifiedVectorUniverse(8, (1, 2, 3), plan=plan)


class TestStratifiedUniversePickling:
    """Stratum-mask and bit-index caches stay out of pickle payloads."""

    def test_caches_dropped_and_rebuilt(self, plan):
        import pickle

        rng = random.Random(17)
        seen: set[int] = set()
        for h, s in enumerate(plan.strata):
            quota = min(3, s.population)
            got = 0
            while got < quota:
                v = plan.draw_from_stratum(h, rng)
                if v not in seen:
                    seen.add(v)
                    got += 1
        universe = StratifiedVectorUniverse(
            plan.num_inputs, tuple(sorted(seen)), plan=plan
        )
        cold = pickle.dumps(universe)
        universe._masks_and_draws()
        for v in universe.vectors:
            universe.bit_of(v)
        warm = pickle.dumps(universe)
        assert len(warm) == len(cold)
        copy = pickle.loads(warm)
        assert copy == universe
        assert copy._stratum_masks is None and copy._bit_index is None
        assert copy._masks_and_draws() == universe._masks_and_draws()
        assert copy.draws_per_stratum == universe.draws_per_stratum
