"""AdaptiveBackend behind the DetectionBackend protocol."""

from __future__ import annotations

import pytest

from repro.adaptive import AdaptiveBackend
from repro.bench_suite.randlogic import random_circuit
from repro.core.worst_case import WorstCaseAnalysis
from repro.errors import AnalysisError
from repro.faults.stuck_at import collapsed_stuck_at_faults
from repro.faults.universe import FaultUniverse
from repro.faultsim.backends import make_backend
from repro.parallel import ParallelBackend, maybe_parallel


@pytest.fixture(scope="module")
def circuit():
    return random_circuit(5, num_inputs=6, num_gates=12)


@pytest.fixture(scope="module")
def backend():
    return AdaptiveBackend(
        target_halfwidth=0.25,
        initial_samples=8,
        max_samples=48,
        k_smallest=2,
        seed=11,
        representation="bigint",
        use_cache=False,
    )


class TestProtocol:
    def test_fault_universe_integration(self, circuit, backend):
        universe = FaultUniverse(circuit, backend=backend)
        target = universe.target_table
        untargeted = universe.untargeted_table
        assert target.universe == untargeted.universe
        assert all(sig for sig in untargeted.signatures)  # dropped
        analysis = WorstCaseAnalysis(target, untargeted)
        assert len(analysis) == len(untargeted)

    def test_controller_runs_once_per_circuit(self, circuit, backend):
        report_a = backend.report_for(circuit)
        report_b = backend.report_for(circuit)
        assert report_a is report_b
        assert backend.universe_for(circuit) is report_a.universe

    def test_drop_undetectable_filters(self, circuit, backend):
        raw = backend.build_bridging(circuit, drop_undetectable=False)
        dropped = backend.build_bridging(circuit, drop_undetectable=True)
        assert len(dropped) == sum(1 for s in raw.signatures if s)
        assert all(s for s in dropped.signatures)

    def test_standard_fault_list_accepted(self, circuit, backend):
        faults = collapsed_stuck_at_faults(circuit)
        table = backend.build_stuck_at(circuit, faults=faults)
        assert table.faults == faults

    def test_foreign_fault_list_rejected(self, circuit, backend):
        faults = collapsed_stuck_at_faults(circuit)[:3]
        with pytest.raises(AnalysisError, match="coupled run"):
            backend.build_stuck_at(circuit, faults=faults)

    def test_line_signatures_over_final_universe(self, circuit, backend):
        sigs = backend.line_signatures(circuit)
        k = backend.universe_for(circuit).size
        assert len(sigs) == len(circuit.lines)
        assert all(s >> k == 0 for s in sigs)


class TestConfiguration:
    def test_make_backend_adaptive(self):
        backend = make_backend(
            "adaptive",
            seed=7,
            target_halfwidth=0.1,
            max_samples=256,
            initial_samples=16,
            stratify="bridging",
        )
        assert isinstance(backend, AdaptiveBackend)
        assert backend.rule.target_halfwidth == 0.1
        assert backend.rule.max_samples == 256
        assert backend.rule.initial_samples == 16
        assert backend.stratify == "bridging"

    def test_make_backend_stratify_none_normalizes(self):
        backend = make_backend("adaptive", stratify="none")
        assert backend.stratify is None

    def test_make_backend_rejects_samples(self):
        with pytest.raises(AnalysisError, match="--max-samples"):
            make_backend("adaptive", samples=64)

    def test_make_backend_rejects_replacement(self):
        with pytest.raises(AnalysisError, match="without replacement"):
            make_backend("adaptive", replacement=True)

    def test_adaptive_flags_rejected_elsewhere(self):
        with pytest.raises(AnalysisError, match="--target-halfwidth"):
            make_backend("exhaustive", target_halfwidth=0.05)
        with pytest.raises(AnalysisError, match="--stratify"):
            make_backend("sampled", samples=8, stratify="bridging")

    def test_jobs_injected_not_wrapped(self):
        backend = make_backend("adaptive", jobs=2)
        assert isinstance(backend, AdaptiveBackend)
        assert backend.jobs == 2
        again = maybe_parallel(backend, 4)
        assert isinstance(again, AdaptiveBackend)
        assert again.jobs == 4

    def test_parallel_wrap_rejected(self):
        with pytest.raises(AnalysisError, match="internally"):
            ParallelBackend(base=AdaptiveBackend(), jobs=2)

    def test_jobs_excluded_from_identity(self):
        a = AdaptiveBackend(seed=3, jobs=1)
        b = AdaptiveBackend(seed=3, jobs=4)
        assert a == b
        assert hash(a) == hash(b)
        assert AdaptiveBackend(seed=3) != AdaptiveBackend(seed=4)

    def test_rule_validation_propagates(self):
        with pytest.raises(AnalysisError, match="k_smallest"):
            AdaptiveBackend(k_smallest=0)
        with pytest.raises(AnalysisError, match="confidence"):
            AdaptiveBackend(confidence=1.0)

    def test_backend_from_env(self, monkeypatch):
        from repro.experiments.common import backend_from_env

        monkeypatch.setenv("REPRO_BACKEND", "adaptive")
        monkeypatch.setenv("REPRO_TARGET_HALFWIDTH", "0.2")
        monkeypatch.setenv("REPRO_MAX_SAMPLES", "128")
        monkeypatch.setenv("REPRO_STRATIFY", "bridging")
        monkeypatch.setenv("REPRO_SEED", "5")
        backend = backend_from_env()
        assert isinstance(backend, AdaptiveBackend)
        assert backend.rule.target_halfwidth == 0.2
        assert backend.rule.max_samples == 128
        assert backend.stratify == "bridging"
        assert backend.seed == 5
