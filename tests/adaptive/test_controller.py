"""Adaptive sampler: trajectories, stopping, incremental reuse."""

from __future__ import annotations

import pytest

from repro.adaptive import (
    AdaptiveSampler,
    StoppingRule,
    StratifiedVectorUniverse,
)
from repro.bench_suite.randlogic import random_circuit
from repro.errors import AnalysisError
from repro.faults.universe import FaultUniverse
from repro.faultsim.backends import ExhaustiveBackend


@pytest.fixture(scope="module")
def circuit():
    return random_circuit(3, num_inputs=6, num_gates=14)


RULE = StoppingRule(
    target_halfwidth=0.2, initial_samples=8, max_samples=48, k_smallest=4
)


class TestStoppingRule:
    """Satellite: K=1, k=0, confidence=1.0 must raise, not explode."""

    def test_defaults_valid(self):
        StoppingRule()

    def test_k_smallest_zero_rejected(self):
        with pytest.raises(AnalysisError, match="k_smallest"):
            StoppingRule(k_smallest=0)

    def test_confidence_one_rejected(self):
        with pytest.raises(AnalysisError, match="confidence"):
            StoppingRule(confidence=1.0)
        with pytest.raises(AnalysisError, match="confidence"):
            StoppingRule(confidence=0.0)

    def test_target_halfwidth_bounds(self):
        with pytest.raises(AnalysisError, match="target_halfwidth"):
            StoppingRule(target_halfwidth=0.0)
        with pytest.raises(AnalysisError, match="target_halfwidth"):
            StoppingRule(target_halfwidth=1.5)

    def test_budget_ordering(self):
        with pytest.raises(AnalysisError, match="max_samples"):
            StoppingRule(initial_samples=64, max_samples=32)
        with pytest.raises(AnalysisError, match="initial_samples"):
            StoppingRule(initial_samples=0)
        with pytest.raises(AnalysisError, match="growth"):
            StoppingRule(growth=1)

    def test_k1_initial_draw_is_valid(self, circuit):
        # A one-vector first round is degenerate but legal: the wide
        # K=1 intervals simply force further growth.
        rule = StoppingRule(
            target_halfwidth=1.0, initial_samples=1, max_samples=2,
            k_smallest=1,
        )
        report = AdaptiveSampler(
            circuit, rule=rule, seed=0, representation="bigint",
            use_cache=False,
        ).run()
        assert report.rounds[0].k_total == 1


class TestSamplerValidation:
    def test_unknown_scheme(self, circuit):
        with pytest.raises(AnalysisError, match="stratification scheme"):
            AdaptiveSampler(circuit, stratify="voltage")

    def test_unknown_representation(self, circuit):
        with pytest.raises(AnalysisError, match="representation"):
            AdaptiveSampler(circuit, representation="sparse")

    def test_bad_jobs(self, circuit):
        with pytest.raises(AnalysisError, match="jobs"):
            AdaptiveSampler(circuit, jobs=0)


class TestTrajectory:
    def test_geometric_growth_and_reuse(self, circuit):
        report = AdaptiveSampler(
            circuit, rule=RULE, seed=1, representation="bigint",
            use_cache=False,
        ).run()
        ks = [r.k_total for r in report.rounds]
        assert ks[0] == 8
        for prev, cur in zip(ks, ks[1:], strict=False):
            assert cur == min(prev * 2, 48, 64)
        # Incremental: total simulated vectors == final K, and the
        # round deltas sum to it exactly (nothing resimulated).
        assert report.total_vectors == ks[-1]
        assert sum(r.k_new for r in report.rounds) == ks[-1]
        assert len(report.trajectory_lines()) == len(report.rounds) + 1

    def test_universe_matches_tables(self, circuit):
        report = AdaptiveSampler(
            circuit, rule=RULE, seed=2, representation="bigint",
            use_cache=False,
        ).run()
        assert report.target_table.universe == report.universe
        assert report.untargeted_table.universe == report.universe
        k = report.universe.size
        for sig in report.target_table.signatures:
            assert sig >> k == 0

    def test_met_target_stops_before_budget(self, circuit):
        # Stratified importance sampling certifies the rare covered
        # faults well before the budget: the run stops mid-schedule.
        report = AdaptiveSampler(
            circuit, rule=RULE, seed=1, stratify="bridging",
            representation="bigint", use_cache=False,
        ).run()
        assert report.met
        assert report.reason == "target met"
        assert report.total_vectors < RULE.max_samples

    def test_budget_exhaustion_reported(self, circuit):
        rule = StoppingRule(
            target_halfwidth=0.01, initial_samples=8, max_samples=32,
            k_smallest=4,
        )
        report = AdaptiveSampler(
            circuit, rule=rule, seed=1, representation="bigint",
            use_cache=False,
        ).run()
        assert not report.met
        assert report.reason == "sample budget exhausted"
        assert report.total_vectors == 32


class TestExhaustiveDegeneration:
    """Full-budget runs canonicalize to the exact exhaustive result."""

    @pytest.mark.parametrize("stratify", [None, "bridging"])
    def test_full_budget_equals_exhaustive(self, circuit, stratify):
        rule = StoppingRule(
            target_halfwidth=0.0001, initial_samples=8, max_samples=64,
            k_smallest=2,
        )
        report = AdaptiveSampler(
            circuit, rule=rule, seed=9, stratify=stratify,
            representation="bigint", use_cache=False,
        ).run()
        assert report.met
        assert report.reason == "exact (universe exhausted)"
        assert report.universe.exact
        exhaustive = FaultUniverse(circuit, backend=ExhaustiveBackend())
        assert (
            report.target_table.signatures
            == exhaustive.target_table.signatures
        )
        # The report keeps the raw (undropped) bridging table; dropping
        # the undetectable rows recovers the paper's G exactly.
        raw = [s for s in report.untargeted_table.signatures if s]
        assert raw == exhaustive.untargeted_table.signatures


class TestRepresentations:
    def test_bigint_packed_identical(self, circuit):
        pytest.importorskip("numpy")
        a = AdaptiveSampler(
            circuit, rule=RULE, seed=4, representation="bigint",
            use_cache=False,
        ).run()
        b = AdaptiveSampler(
            circuit, rule=RULE, seed=4, representation="packed",
            use_cache=False,
        ).run()
        assert a.universe == b.universe
        assert a.target_table.signatures == b.target_table.signatures
        assert (
            a.untargeted_table.signatures == b.untargeted_table.signatures
        )
        assert [
            (r.k_total, r.met, r.allocation) for r in a.rounds
        ] == [(r.k_total, r.met, r.allocation) for r in b.rounds]

    def test_packed_table_type(self, circuit):
        pytest.importorskip("numpy")
        from repro.faultsim.packed_table import PackedDetectionTable

        report = AdaptiveSampler(
            circuit, rule=RULE, seed=4, representation="packed",
            use_cache=False,
        ).run()
        assert isinstance(report.target_table, PackedDetectionTable)
        assert report.target_table.packed.to_bigints() == (
            report.target_table.signatures
        )


class TestStratifiedController:
    def test_stratified_universe_and_allocations(self, circuit):
        report = AdaptiveSampler(
            circuit, rule=RULE, seed=1, stratify="bridging",
            representation="bigint", use_cache=False,
        ).run()
        assert report.stratified
        if not report.universe.exact:
            assert isinstance(report.universe, StratifiedVectorUniverse)
        for r in report.rounds:
            assert r.allocation is not None
            assert sum(r.allocation) == r.k_new
        # Draw counts per stratum never exceed the populations.
        plan = report.plan
        if not report.universe.exact:
            for drawn, stratum in zip(
                report.universe.draws_per_stratum, plan.strata, strict=True
            ):
                assert drawn <= stratum.population

    def test_stratified_beats_uniform_on_rare_focus(self, circuit):
        # The whole point of the strata: certifying the rare covered
        # faults to a relative precision needs no more vectors than
        # uniform growth — strictly fewer on any interesting circuit.
        rule = StoppingRule(
            target_halfwidth=0.25, initial_samples=8, max_samples=64,
            k_smallest=2,
        )
        strat = AdaptiveSampler(
            circuit, rule=rule, seed=3, stratify="bridging",
            representation="bigint", use_cache=False,
        ).run()
        uniform = AdaptiveSampler(
            circuit, rule=rule, seed=3, representation="bigint",
            use_cache=False,
        ).run()
        assert strat.total_vectors <= uniform.total_vectors

    def test_fallback_without_rare_sites(self):
        from repro.bench_suite.example import xor_tree

        report = AdaptiveSampler(
            xor_tree(),
            rule=StoppingRule(
                target_halfwidth=0.5, initial_samples=4, max_samples=8,
                k_smallest=1,
            ),
            seed=0,
            stratify="bridging",
            representation="bigint",
            use_cache=False,
        ).run()
        # Plan degenerates to bulk-only: the run is plain uniform growth.
        assert report.plan is not None
        assert report.plan.num_strata == 1
        assert not report.stratified
        for r in report.rounds:
            assert r.allocation is None
