"""Cross-engine property tests on random circuits (second wave).

Each test pits two independent implementations of the same question
against each other on randomly generated netlists:

* PODEM (search-based) vs exhaustive tables (enumeration) on
  detectability *and* on the tests they produce;
* bridging detection signatures vs the serial per-vector engine;
* gate-exhaustive signatures vs a brute-force two-pass simulation;
* greedy n-detection sets vs the Definition 1 counting invariant.
"""

from __future__ import annotations

import random as pyrandom

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.atpg.ndetect import greedy_ndetection_set
from repro.atpg.podem import DETECTED, generate_test
from repro.bench_suite.randlogic import random_circuit
from repro.faults.cell_aware import gate_exhaustive_table
from repro.faultsim.detection import DetectionTable
from repro.faultsim.serial import detects_bridging, detects_stuck_at
from repro.simulation.twoval import simulate_vector

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _circuit_from(seed: int, gates: int = 16):
    return random_circuit(seed % 9973, num_inputs=5, num_gates=gates)


@given(st.integers(min_value=0, max_value=10**6))
@_SETTINGS
def test_podem_agrees_with_exhaustive(seed):
    circuit = _circuit_from(seed)
    table = DetectionTable.for_stuck_at(circuit)
    rng = pyrandom.Random(seed)
    indices = rng.sample(range(len(table)), min(8, len(table)))
    for i in indices:
        fault = table.faults[i]
        result = generate_test(circuit, fault, backtrack_limit=0)
        assert (result.status == DETECTED) == bool(table.signatures[i]), (
            fault.name(circuit)
        )
        if result.status == DETECTED:
            v = result.vector()
            assert (table.signatures[i] >> v) & 1


@given(st.integers(min_value=0, max_value=10**6))
@_SETTINGS
def test_bridging_table_agrees_with_serial(seed):
    circuit = _circuit_from(seed)
    table = DetectionTable.for_bridging(circuit, drop_undetectable=False)
    if not len(table):
        return
    rng = pyrandom.Random(seed)
    space = 1 << circuit.num_inputs
    for i in rng.sample(range(len(table)), min(5, len(table))):
        fault = table.faults[i]
        for v in rng.sample(range(space), 6):
            assert detects_bridging(circuit, fault, v) == bool(
                (table.signatures[i] >> v) & 1
            )


@given(st.integers(min_value=0, max_value=10**6))
@_SETTINGS
def test_gate_exhaustive_agrees_with_bruteforce(seed):
    circuit = _circuit_from(seed, gates=10)
    table = gate_exhaustive_table(circuit, drop_undetectable=False)
    if not len(table):
        return
    rng = pyrandom.Random(seed)
    space = 1 << circuit.num_inputs
    for i in rng.sample(range(len(table)), min(5, len(table))):
        fault = table.faults[i]
        line = circuit.lines[fault.lid]
        for v in rng.sample(range(space), 5):
            good = simulate_vector(circuit, v)
            pattern = 0
            for src in line.fanin:
                pattern = (pattern << 1) | good[src]
            if pattern != fault.pattern:
                expected = False
            else:
                faulty = simulate_vector(
                    circuit, v, forced={fault.lid: good[fault.lid] ^ 1}
                )
                expected = any(
                    good[o] != faulty[o] for o in circuit.outputs
                )
            assert bool((table.signatures[i] >> v) & 1) == expected


@given(
    st.integers(min_value=0, max_value=10**6),
    st.integers(min_value=1, max_value=4),
)
@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_greedy_ndetection_meets_quotas(seed, n):
    circuit = _circuit_from(seed, gates=12)
    table = DetectionTable.for_stuck_at(circuit)
    tests = greedy_ndetection_set(table, n)
    assert len(set(tests)) == len(tests)
    sig = sum(1 << t for t in tests)
    for f_sig in table.signatures:
        assert (f_sig & sig).bit_count() >= min(n, f_sig.bit_count())
    # And the serial engine confirms a sample of the detections.
    rng = pyrandom.Random(seed)
    for i in rng.sample(range(len(table)), min(4, len(table))):
        fault = table.faults[i]
        detected = [
            t for t in tests if detects_stuck_at(circuit, fault, t)
        ]
        assert len(detected) >= min(n, table.signatures[i].bit_count())