"""PODEM: cross-validated against exhaustive detection tables."""

from __future__ import annotations

import random

import pytest

from repro.atpg.podem import (
    ABORTED,
    DETECTED,
    UNDETECTABLE,
    PodemResult,
    generate_test,
    is_detectable,
)
from repro.errors import AtpgError
from repro.faults.stuck_at import all_stuck_at_faults
from repro.faultsim.detection import DetectionTable
from repro.faultsim.serial import detects_stuck_at


class TestAgainstExhaustive:
    @pytest.mark.parametrize(
        "fixture",
        ["example_circuit", "c17_circuit", "majority_circuit",
         "and_or_circuit", "xor_tree_circuit"],
    )
    def test_detectability_matches(self, fixture, request):
        """PODEM's verdict must equal the exhaustive table's for every
        fault in the full (uncollapsed) universe."""
        circuit = request.getfixturevalue(fixture)
        faults = all_stuck_at_faults(circuit)
        table = DetectionTable.for_stuck_at(circuit, faults=faults)
        for i, fault in enumerate(faults):
            result = generate_test(circuit, fault, backtrack_limit=0)
            expected = bool(table.signatures[i])
            assert (result.status == DETECTED) == expected, (
                fault.name(circuit)
            )

    @pytest.mark.parametrize(
        "fixture", ["example_circuit", "c17_circuit", "majority_circuit"]
    )
    def test_generated_cubes_detect(self, fixture, request):
        """Every completion of a PODEM cube must detect the fault."""
        circuit = request.getfixturevalue(fixture)
        for fault in all_stuck_at_faults(circuit):
            result = generate_test(circuit, fault, backtrack_limit=0)
            if result.status != DETECTED:
                continue
            for v in result.cube.completions():
                assert detects_stuck_at(circuit, fault, v), (
                    f"{fault.name(circuit)} cube {result.cube}"
                )


class TestRedundantFaults:
    def test_undetectable_identified(self):
        from repro.circuit.builder import CircuitBuilder
        from repro.circuit.gate import GateType
        from repro.faults.stuck_at import StuckAtFault

        # y = OR(a, CONST1) is constant 1: a-side faults are undetectable.
        b = CircuitBuilder("redundant")
        b.input("a")
        b.gate("k", GateType.CONST1, [])
        b.gate("y", GateType.OR, ["a", "k"])
        b.output("y")
        c = b.build()
        assert not is_detectable(c, StuckAtFault(c.lid_of("a"), 0))
        assert not is_detectable(c, StuckAtFault(c.lid_of("a"), 1))
        assert not is_detectable(c, StuckAtFault(c.lid_of("y"), 1))
        assert is_detectable(c, StuckAtFault(c.lid_of("y"), 0))


class TestResultObject:
    def test_vector_deterministic_without_rng(self, example_circuit):
        from repro.faults.stuck_at import StuckAtFault

        f = StuckAtFault(example_circuit.lid_of("1"), 1)
        result = generate_test(example_circuit, f)
        v = result.vector()
        assert detects_stuck_at(example_circuit, f, v)

    def test_vector_with_rng(self, example_circuit):
        from repro.faults.stuck_at import StuckAtFault

        f = StuckAtFault(example_circuit.lid_of("1"), 1)
        result = generate_test(example_circuit, f)
        rng = random.Random(3)
        for _ in range(10):
            assert detects_stuck_at(
                example_circuit, f, result.vector(rng)
            )

    def test_no_cube_raises(self):
        result = PodemResult(UNDETECTABLE, None)
        with pytest.raises(AtpgError):
            result.vector()

    def test_abort_status_surfaces(self):
        # A backtrack limit of 1 on an XOR-heavy circuit may abort; the
        # is_detectable wrapper must refuse to guess.
        from repro.bench_suite.example import xor_tree
        from repro.faults.stuck_at import StuckAtFault

        c = xor_tree(3)
        f = StuckAtFault(0, 1)
        result = generate_test(c, f, backtrack_limit=1)
        assert result.status in (DETECTED, ABORTED, UNDETECTABLE)
        if result.status == ABORTED:
            with pytest.raises(AtpgError, match="backtrack"):
                is_detectable(c, f, backtrack_limit=1)
