"""n-detection test-set generators: quotas and the linear-growth premise."""

from __future__ import annotations

import random

import pytest

from repro.atpg.ndetect import greedy_ndetection_set, podem_ndetection_set
from repro.errors import AtpgError
from repro.faultsim.serial import detects_stuck_at


class TestGreedy:
    @pytest.mark.parametrize("n", [1, 2, 3, 5])
    def test_quotas_met(self, example_universe, n):
        table = example_universe.target_table
        tests = greedy_ndetection_set(table, n)
        sig = sum(1 << t for t in tests)
        for f_sig in table.signatures:
            want = min(n, f_sig.bit_count())
            assert (f_sig & sig).bit_count() >= want

    def test_no_duplicates(self, example_universe):
        tests = greedy_ndetection_set(example_universe.target_table, 3)
        assert len(set(tests)) == len(tests)

    def test_sizes_grow_roughly_linearly(self, example_universe):
        """The paper's premise: compact n-detection test sets grow about
        linearly with n."""
        table = example_universe.target_table
        sizes = [len(greedy_ndetection_set(table, n)) for n in (1, 2, 3, 4)]
        assert sizes == sorted(sizes)
        # Size at n=4 within a factor ~n of size at n=1 (loose linearity).
        assert sizes[3] <= 4 * sizes[0] + 4

    def test_rng_tiebreak_still_valid(self, example_universe):
        table = example_universe.target_table
        tests = greedy_ndetection_set(table, 2, rng=random.Random(9))
        sig = sum(1 << t for t in tests)
        for f_sig in table.signatures:
            want = min(2, f_sig.bit_count())
            assert (f_sig & sig).bit_count() >= want

    def test_bad_n(self, example_universe):
        with pytest.raises(AtpgError):
            greedy_ndetection_set(example_universe.target_table, 0)


class TestPodemGenerator:
    @pytest.mark.parametrize("n", [1, 2])
    def test_quotas_met(self, example_universe, n):
        c = example_universe.circuit
        faults = example_universe.target_faults
        tests = podem_ndetection_set(c, faults, n, seed=4)
        assert len(set(tests)) == len(tests)
        for i, fault in enumerate(faults):
            cap = example_universe.target_table.signatures[i].bit_count()
            want = min(n, cap)
            have = sum(
                1 for t in tests if detects_stuck_at(c, fault, t)
            )
            assert have >= want, fault.name(c)

    def test_bad_n(self, example_universe):
        with pytest.raises(AtpgError):
            podem_ndetection_set(
                example_universe.circuit, example_universe.target_faults, 0
            )

    def test_greedy_not_larger_than_podem(self, example_universe):
        """The table-driven greedy generator should be at least as
        compact as the per-fault PODEM generator."""
        c = example_universe.circuit
        greedy = greedy_ndetection_set(example_universe.target_table, 2)
        podem = podem_ndetection_set(
            c, example_universe.target_faults, 2, seed=1
        )
        assert len(greedy) <= len(podem) + 2
