"""Differential cross-validation of the numpy-packed backend.

The packed engine stores the *same* bits as the big-int engines, so
tables, counts, ``nmin`` records (witnesses included), and
``guaranteed_n`` must be identical on exhaustive and sampled universes
alike.  ``REPRO_DIFF_SUITE=full`` extends the suite sweep from the
default representative subset to every suite circuit (the CI workflow
does this).

Kept separate from ``tests/test_backend_differential.py`` so the PR-1
big-int differential harness still runs on numpy-less installs.
"""

from __future__ import annotations

import os

import pytest

pytest.importorskip("numpy")

from repro.bench_suite.randlogic import random_circuit
from repro.bench_suite.registry import (
    WIDE_NAMES,
    get_circuit,
    suite_table_groups,
)
from repro.core.worst_case import WorstCaseAnalysis, nmin_for_untargeted_fault
from repro.experiments.common import get_universe, get_worst_case
from repro.faults.universe import FaultUniverse
from repro.faultsim.backends import (
    ExhaustiveBackend,
    PackedBackend,
    SampledBackend,
)
from repro.faultsim.packed_table import PackedDetectionTable

#: Representative tier-1 subset; REPRO_DIFF_SUITE=full sweeps them all.
_SUITE_SUBSET = (
    "lion", "train4", "mc", "s8", "tav",
    "beecount", "ex2", "ex3", "opus", "bbara",
)


def _suite_circuits() -> list[str]:
    if os.environ.get("REPRO_DIFF_SUITE") == "full":
        return list(suite_table_groups())
    return list(_SUITE_SUBSET)


def _assert_same_analysis(big: WorstCaseAnalysis, packed: WorstCaseAnalysis):
    assert big.records == packed.records  # nmin, witness, and overlap
    assert big.guaranteed_n() == packed.guaranteed_n()
    assert big.nmin_values() == packed.nmin_values()


class TestPackedDifferential:
    """Property-style: packed ≡ big-int on random circuits, any universe."""

    @pytest.mark.parametrize(
        "seed,p,gates", [(1, 5, 12), (2, 6, 14), (3, 7, 16)]
    )
    def test_exhaustive_universe(self, seed, p, gates):
        circuit = random_circuit(seed, num_inputs=p, num_gates=gates)
        big = FaultUniverse(circuit, backend=ExhaustiveBackend())
        pck = FaultUniverse(circuit, backend=PackedBackend())
        assert pck.target_table.signatures == big.target_table.signatures
        assert pck.untargeted_table.signatures == (
            big.untargeted_table.signatures
        )
        assert pck.target_table.counts() == big.target_table.counts()
        _assert_same_analysis(
            WorstCaseAnalysis(big.target_table, big.untargeted_table),
            WorstCaseAnalysis(pck.target_table, pck.untargeted_table),
        )

    @pytest.mark.parametrize("seed", range(8))
    def test_sampled_universe(self, seed):
        circuit = random_circuit(40 + seed, num_inputs=7, num_gates=16)
        k = 16 + 13 * seed  # sweep a range of sample sizes
        big = FaultUniverse(circuit, backend=SampledBackend(k, seed=seed))
        pck = FaultUniverse(
            circuit, backend=PackedBackend(samples=k, seed=seed)
        )
        assert pck.target_table.signatures == big.target_table.signatures
        assert pck.target_table.universe == big.target_table.universe
        assert pck.untargeted_table.counts() == (
            big.untargeted_table.counts()
        )
        _assert_same_analysis(
            WorstCaseAnalysis(big.target_table, big.untargeted_table),
            WorstCaseAnalysis(pck.target_table, pck.untargeted_table),
        )

    def test_single_fault_scan_dispatch(self):
        """nmin_for_untargeted_fault agrees between table kinds."""
        circuit = random_circuit(9, num_inputs=6, num_gates=14)
        big = FaultUniverse(circuit)
        packed_targets = PackedDetectionTable.from_table(big.target_table)
        for g_sig in big.untargeted_table.signatures[:10]:
            assert nmin_for_untargeted_fault(
                packed_targets, g_sig
            ) == nmin_for_untargeted_fault(big.target_table, g_sig)

    @pytest.mark.parametrize("name", WIDE_NAMES)
    def test_wide_sampled_circuits(self, name):
        """The >24-input circuits: packed ≡ sampled big-int, record for
        record — the claim behind the packed nmin-scan benchmark."""
        circuit = get_circuit(name)
        big = FaultUniverse(circuit, backend=SampledBackend(256, seed=7))
        pck = FaultUniverse(
            circuit, backend=PackedBackend(samples=256, seed=7)
        )
        assert pck.target_table.signatures == big.target_table.signatures
        _assert_same_analysis(
            WorstCaseAnalysis(big.target_table, big.untargeted_table),
            WorstCaseAnalysis(pck.target_table, pck.untargeted_table),
        )


class TestPackedSuite:
    """Packed ≡ exhaustive nmin records on suite circuits.

    Tier-1 runs a representative subset; the CI workflow sets
    ``REPRO_DIFF_SUITE=full`` to prove the equivalence on *every* suite
    circuit (sharing the exhaustive analyses with the rest of the run
    via the experiments cache).
    """

    @pytest.mark.parametrize("name", _suite_circuits())
    def test_suite_circuit(self, name):
        universe = get_universe(name)
        big = get_worst_case(name)
        packed = WorstCaseAnalysis(
            PackedDetectionTable.from_table(universe.target_table),
            PackedDetectionTable.from_table(universe.untargeted_table),
        )
        _assert_same_analysis(big, packed)
