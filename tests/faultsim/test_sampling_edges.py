"""Estimator edge cases and the replacement-draw dedupe regression.

Satellite coverage of the adaptive-sampling PR: ``K = 1``, zero
observed counts, and degenerate confidence levels must either raise
:class:`~repro.errors.AnalysisError` or return the documented
degenerate intervals — never a ``ZeroDivisionError`` or a silent
``inf``; and with-replacement draws must never let duplicate vectors
occupy distinct signature bits.
"""

from __future__ import annotations

import math

import pytest

from repro.errors import AnalysisError
from repro.faultsim.sampling import (
    VectorUniverse,
    confidence_z,
    count_interval,
    draw_universe,
    estimate_count,
    estimate_nmin,
)


class TestIntervalEdgeCases:
    def test_single_vector_universe(self):
        # K = 1 is the most degenerate legal sample: intervals are wide
        # but finite, and both observed outcomes (0 and 1) work.
        u = VectorUniverse(3, vectors=(5,))
        for k in (0, 1):
            est = count_interval(u, k, confidence=0.95)
            assert math.isfinite(est.low) and math.isfinite(est.high)
            assert 0.0 <= est.low <= est.estimate <= est.high <= 8.0
            assert est.half_width > 0.0

    def test_single_vector_single_input_space(self):
        # num_inputs = 0: |U| = 1, the sample is the whole space.
        u = VectorUniverse(0, vectors=(0,))
        est = count_interval(u, 1, confidence=0.95)
        assert est.high <= 1.0

    def test_zero_count_interval_informative(self):
        u = draw_universe(6, 16, seed=1)
        est = count_interval(u, 0, confidence=0.95)
        assert est.estimate == 0.0 and est.low == 0.0
        assert 0.0 < est.high < u.space  # one-sided Wilson, not empty

    def test_full_count_interval_informative(self):
        u = draw_universe(6, 16, seed=1)
        est = count_interval(u, 16, confidence=0.95)
        assert est.high == float(u.space) or est.high <= u.space
        assert est.low < u.space

    @pytest.mark.parametrize("confidence", [1.0, 0.0, -0.5, 2.0])
    def test_degenerate_confidence_raises(self, confidence):
        u = draw_universe(4, 4, seed=0)
        with pytest.raises(AnalysisError, match="confidence"):
            count_interval(u, 2, confidence=confidence)
        with pytest.raises(AnalysisError, match="confidence"):
            confidence_z(confidence)

    def test_sample_count_out_of_range(self):
        u = VectorUniverse(3, vectors=(1, 2))
        with pytest.raises(AnalysisError, match="out of range"):
            count_interval(u, 3)
        with pytest.raises(AnalysisError, match="out of range"):
            estimate_count(u, -1)

    def test_estimate_nmin_passthroughs(self):
        u = draw_universe(6, 16, seed=1)
        assert estimate_nmin(u, None) is None
        assert estimate_nmin(u, 0) == 0  # degenerate, returned as-is
        assert estimate_nmin(u, 1) == 1.0  # scale applies to nmin - 1
        assert estimate_nmin(VectorUniverse(6), 7) == 7

    def test_exhausted_sample_degenerates_to_exact(self):
        # A hand-built full-coverage sample (not canonicalized): the
        # FPC collapses the interval to the exact point.
        u = VectorUniverse(2, vectors=(0, 1, 2, 3))
        est = count_interval(u, 3)
        assert est.low == est.estimate == est.high == 3.0


class TestReplacementDedupe:
    """Regression: duplicate draws biased every popcount estimator."""

    def test_draws_unique_and_sorted(self):
        for seed in range(20):
            u = draw_universe(5, 12, seed=seed, replacement=True)
            assert len(set(u.vectors)) == 12
            assert list(u.vectors) == sorted(u.vectors)
            assert u.replacement

    def test_full_replacement_draw_canonicalizes(self):
        u = draw_universe(3, 8, seed=2, replacement=True)
        assert u.exhaustive
        assert u == VectorUniverse(3)

    def test_oversized_replacement_rejected(self):
        with pytest.raises(AnalysisError, match="cannot draw"):
            draw_universe(3, 9, seed=0, replacement=True)

    def test_estimator_unbiased_over_seeds(self):
        # A fixed 6-element subset of the 16-vector universe: the mean
        # scaled popcount over many replacement draws must approach 6.
        subset = {1, 3, 6, 7, 11, 13}
        total = 0.0
        seeds = range(300)
        for seed in seeds:
            u = draw_universe(4, 8, seed=seed, replacement=True)
            hits = sum(1 for v in u.vectors if v in subset)
            total += estimate_count(u, hits)
        mean = total / len(seeds)
        assert abs(mean - 6.0) < 0.25

    def test_no_duplicate_signature_bits(self):
        # Every signature bit of a replacement universe now refers to a
        # distinct vector, so bit_of/vector_at round-trip uniquely.
        u = draw_universe(4, 10, seed=5, replacement=True)
        bits = [u.bit_of(v) for v in u.vectors]
        assert sorted(bits) == list(range(10))


class TestUniversePickling:
    """The lazy bit-index cache must not ride along in pickle payloads."""

    def test_payload_size_independent_of_cache(self):
        import pickle

        u = draw_universe(10, 200, seed=3)
        cold = pickle.dumps(u)
        for v in u.vectors:  # populate the lazy _bit_index cache
            u.bit_of(v)
        assert u._bit_index is not None
        warm = pickle.dumps(u)
        assert len(warm) == len(cold), (
            "a populated bit-index cache leaked into the pickle payload"
        )

    def test_round_trip_drops_and_rebuilds_cache(self):
        import pickle

        u = draw_universe(8, 40, seed=9)
        for v in u.vectors:
            u.bit_of(v)
        copy = pickle.loads(pickle.dumps(u))
        assert copy == u
        assert copy._bit_index is None  # dropped, not serialized
        # Rebuilt lazily, with identical behavior.
        for v in u.vectors:
            assert copy.bit_of(v) == u.bit_of(v)
        assert copy.bit_of((1 << 8) - 1) == u.bit_of((1 << 8) - 1)
        assert copy._bit_index is not None

    def test_exhaustive_universe_round_trip(self):
        import pickle

        u = VectorUniverse(6)
        copy = pickle.loads(pickle.dumps(u))
        assert copy == u and copy.exhaustive
        assert copy.bit_of(13) == 13
