"""3-valued detection of partial vectors (Definition 2's ``tij`` checks)."""

from __future__ import annotations

from repro.faults.stuck_at import StuckAtFault
from repro.faultsim.threeval_detect import (
    cube_detects_stuck_at,
    cubes_detect_stuck_at,
    pair_checks_batch,
)
from repro.logic.cube import Cube, common_cube


class TestScalarDetection:
    def test_fully_specified_matches_membership(self, example_universe):
        """On full vectors, 3-valued detection equals T(f) membership."""
        c = example_universe.circuit
        table = example_universe.target_table
        for i, fault in enumerate(table.faults):
            sig = table.signatures[i]
            for v in range(16):
                cube = Cube.full(v, 4)
                assert cube_detects_stuck_at(c, fault, cube) == bool(
                    (sig >> v) & 1
                )

    def test_partial_detection_soundness(self, example_universe):
        """If a partial vector detects f, all its completions must."""
        c = example_universe.circuit
        table = example_universe.target_table
        cubes = [
            Cube.from_string(s)
            for s in ("01xx", "x1x0", "0xx1", "xxxx", "011x", "1x00")
        ]
        for i, fault in enumerate(table.faults):
            sig = table.signatures[i]
            for cube in cubes:
                if cube_detects_stuck_at(c, fault, cube):
                    for v in cube.completions():
                        assert (sig >> v) & 1, (
                            f"{table.fault_name(i)} vs {cube}"
                        )

    def test_known_tij(self, example_universe):
        """tij of 4 and 5 is 010x, which detects 1/1 (T = {4,5,6,7})."""
        c = example_universe.circuit
        fault = StuckAtFault(c.lid_of("1"), 1)
        tij = common_cube(4, 5, 4)
        assert str(tij) == "010x"
        assert cube_detects_stuck_at(c, fault, tij)

    def test_known_non_detecting_tij(self, example_universe):
        """tij of 4 and 11 shares only input 3=0... and detects nothing."""
        c = example_universe.circuit
        fault = StuckAtFault(c.lid_of("1"), 1)
        tij = common_cube(4, 11, 4)  # 0100 vs 1011 agree nowhere except...
        assert not cube_detects_stuck_at(c, fault, tij)


class TestBatchedDetection:
    def test_batch_matches_scalar(self, example_universe):
        c = example_universe.circuit
        fault = example_universe.target_faults[0]
        cubes = [
            common_cube(a, b, 4)
            for a in (4, 5, 6, 7)
            for b in (4, 5, 6, 7)
        ]
        batch = cubes_detect_stuck_at(c, fault, cubes)
        scalar = [cube_detects_stuck_at(c, fault, q) for q in cubes]
        assert batch == scalar

    def test_empty_batch(self, example_universe):
        assert (
            cubes_detect_stuck_at(
                example_universe.circuit, example_universe.target_faults[0], []
            )
            == []
        )

    def test_pair_checks(self, example_universe):
        c = example_universe.circuit
        fault = StuckAtFault(c.lid_of("1"), 1)  # T = {4,5,6,7}
        verdicts = pair_checks_batch(
            c, fault, [(4, 5), (4, 6), (4, 7), (5, 6)]
        )
        # (4,5) -> 010x detects f: similar.  (4,7) -> 01xx: 9 stays 0 with
        # fault only when 2=1... detection needs input1=0,2=1: 01xx forces
        # 9 good=0 faulty=1 -> detected: similar as well.
        scalar = [
            cube_detects_stuck_at(c, fault, common_cube(a, b, 4))
            for a, b in [(4, 5), (4, 6), (4, 7), (5, 6)]
        ]
        assert verdicts == scalar
