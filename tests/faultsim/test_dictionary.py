"""Fault dictionary and diagnosis tests."""

from __future__ import annotations

import pytest

from repro.atpg.ndetect import greedy_ndetection_set
from repro.errors import AnalysisError
from repro.faultsim.dictionary import FaultDictionary


@pytest.fixture(scope="module")
def full_dictionary(example_universe):
    """Dictionary over the complete input space (maximum resolution)."""
    return FaultDictionary(
        example_universe.target_table, list(range(16))
    )


class TestConstruction:
    def test_masks_match_table(self, example_universe, full_dictionary):
        table = example_universe.target_table
        for i, sig in enumerate(table.signatures):
            # Over U in natural order, the mask IS the signature.
            assert full_dictionary.masks[i] == sig

    def test_duplicate_tests_rejected(self, example_universe):
        with pytest.raises(AnalysisError, match="duplicate"):
            FaultDictionary(example_universe.target_table, [1, 1])

    def test_range_checked(self, example_universe):
        with pytest.raises(AnalysisError, match="out of range"):
            FaultDictionary(example_universe.target_table, [16])


class TestDiagnosis:
    def test_injected_fault_recovered(self, example_universe, full_dictionary):
        """Simulating a fault and diagnosing its failures must rank the
        fault (or its detection-equivalents) as a candidate."""
        table = example_universe.target_table
        for i in range(len(table)):
            failing = [
                pos
                for pos, t in enumerate(full_dictionary.tests)
                if (table.signatures[i] >> t) & 1
            ]
            candidates = full_dictionary.diagnose(failing)
            assert i in candidates
            # Every candidate is detection-equivalent to the true fault.
            for c in candidates:
                assert table.signatures[c] == table.signatures[i]

    def test_no_failures_diagnoses_undetected(self, example_universe):
        dictionary = FaultDictionary(example_universe.target_table, [0])
        candidates = dictionary.diagnose([])
        # Faults not detected by vector 0 all match the all-pass pattern.
        expected = [
            i
            for i, sig in enumerate(example_universe.target_table.signatures)
            if not (sig & 1)
        ]
        assert candidates == expected

    def test_subset_matching(self, full_dictionary, example_universe):
        """exact=False tolerates unobserved failures."""
        table = example_universe.target_table
        i = 0  # fault 1/1, fails on 4,5,6,7
        candidates = full_dictionary.diagnose([4, 5], exact=False)
        assert i in candidates
        assert i not in full_dictionary.diagnose([4, 5], exact=True)

    def test_position_range_checked(self, full_dictionary):
        with pytest.raises(AnalysisError):
            full_dictionary.diagnose([99])


class TestResolution:
    def test_full_space_resolution(self, full_dictionary, example_universe):
        """Over U, faults are unique up to equal detection sets."""
        table = example_universe.target_table
        distinct = len(set(table.signatures))
        classes = full_dictionary.equivalence_classes_under()
        assert len(classes) == distinct

    def test_resolution_monotone_in_tests(self, example_universe):
        """More tests can only improve diagnostic resolution."""
        table = example_universe.target_table
        small = FaultDictionary(table, [6, 7])
        large = FaultDictionary(table, [6, 7, 12, 1, 2])
        assert (
            large.diagnostic_resolution() >= small.diagnostic_resolution()
        )
        assert large.detected_count() >= small.detected_count()

    def test_ndetection_improves_resolution(self, example_universe):
        """The diagnosis angle on the paper's premise: higher n gives a
        finer dictionary (weakly)."""
        table = example_universe.target_table
        t1 = greedy_ndetection_set(table, 1)
        t3 = greedy_ndetection_set(table, 3)
        d1 = FaultDictionary(table, t1)
        d3 = FaultDictionary(table, t3)
        assert d3.diagnostic_resolution() >= d1.diagnostic_resolution()

    def test_empty_detection_resolution(self, example_universe):
        d = FaultDictionary(example_universe.target_table, [])
        assert d.diagnostic_resolution() == 1.0
        assert d.detected_count() == 0
