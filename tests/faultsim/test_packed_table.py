"""PackedDetectionTable: a drop-in DetectionTable with vectorized queries."""

from __future__ import annotations

import pytest

pytest.importorskip("numpy")

from repro.bench_suite.randlogic import random_circuit
from repro.errors import AnalysisError, FaultError
from repro.faults.universe import FaultUniverse
from repro.faultsim.backends import (
    ExhaustiveBackend,
    PackedBackend,
    SampledBackend,
    make_backend,
)
from repro.faultsim.detection import DetectionTable
from repro.faultsim.packed_table import PackedDetectionTable
from repro.logic.packed import PackedSignatureMatrix


@pytest.fixture(scope="module")
def circuit():
    return random_circuit(21, num_inputs=6, num_gates=14)


@pytest.fixture(scope="module")
def plain_tables(circuit):
    return (
        DetectionTable.for_stuck_at(circuit),
        DetectionTable.for_bridging(circuit),
    )


@pytest.fixture(scope="module")
def packed_tables(plain_tables):
    plain_f, plain_g = plain_tables
    return (
        PackedDetectionTable.from_table(plain_f),
        PackedDetectionTable.from_table(plain_g),
    )


class TestQuerySurface:
    """Every DetectionTable query must agree with the plain table."""

    def test_identity_fields(self, plain_tables, packed_tables):
        for plain, packed in zip(plain_tables, packed_tables, strict=True):
            assert packed.faults == plain.faults
            assert packed.signatures == plain.signatures
            assert packed.universe == plain.universe
            assert len(packed) == len(plain)

    def test_counts(self, plain_tables, packed_tables):
        for plain, packed in zip(plain_tables, packed_tables, strict=True):
            assert packed.counts() == plain.counts()
            for i in range(len(plain)):
                assert packed.count(i) == plain.count(i)

    def test_detectability(self, plain_tables, packed_tables):
        for plain, packed in zip(plain_tables, packed_tables, strict=True):
            assert packed.num_detectable() == plain.num_detectable()
            assert packed.detectable_indices() == plain.detectable_indices()

    def test_test_set_queries(self, plain_tables, packed_tables):
        test_signature = 0b1011001
        for plain, packed in zip(plain_tables, packed_tables, strict=True):
            assert packed.detected_by(test_signature) == plain.detected_by(
                test_signature
            )
            assert packed.detection_counts(
                test_signature
            ) == plain.detection_counts(test_signature)
            assert packed.coverage(test_signature) == plain.coverage(
                test_signature
            )

    def test_vectors_and_estimates(self, plain_tables, packed_tables):
        plain, packed = plain_tables[0], packed_tables[0]
        for i in (0, 1, len(plain) - 1):
            assert packed.vectors(i) == plain.vectors(i)
            assert packed.detecting_vectors(i) == plain.detecting_vectors(i)
            assert packed.estimated_count(i) == plain.estimated_count(i)

    def test_packed_matrix_consistency(self, packed_tables):
        for packed in packed_tables:
            assert packed.packed.to_bigints() == packed.signatures

    def test_from_table_is_idempotent(self, packed_tables):
        packed = packed_tables[0]
        assert PackedDetectionTable.from_table(packed) is packed


class TestConstruction:
    def test_for_stuck_at_builds_packed(self, circuit):
        table = PackedDetectionTable.for_stuck_at(circuit)
        assert isinstance(table.packed, PackedSignatureMatrix)
        assert table.packed.to_bigints() == table.signatures

    def test_mismatched_packed_rejected(self, circuit, plain_tables):
        plain = plain_tables[0]
        wrong = PackedSignatureMatrix.from_bigints(
            plain.signatures[:-1], plain.universe.size
        )
        with pytest.raises(FaultError, match="length mismatch"):
            PackedDetectionTable(
                circuit, plain.faults, plain.signatures,
                plain.universe, packed=wrong,
            )


class TestPackedBackend:
    def test_exhaustive_equivalence(self, circuit):
        exh = FaultUniverse(circuit, backend=ExhaustiveBackend())
        pck = FaultUniverse(circuit, backend=PackedBackend())
        assert pck.target_table.signatures == exh.target_table.signatures
        assert pck.untargeted_table.faults == exh.untargeted_table.faults
        assert pck.target_table.universe == exh.target_table.universe

    def test_sampled_equivalence(self, circuit):
        smp = FaultUniverse(circuit, backend=SampledBackend(24, seed=3))
        pck = FaultUniverse(
            circuit, backend=PackedBackend(samples=24, seed=3)
        )
        assert pck.target_table.signatures == smp.target_table.signatures
        assert pck.target_table.universe == smp.target_table.universe

    def test_make_backend_packed(self):
        assert make_backend("packed") == PackedBackend()
        assert make_backend(
            "packed", samples=32, seed=2
        ) == PackedBackend(samples=32, seed=2)

    def test_samples_validated(self):
        with pytest.raises(AnalysisError, match="samples"):
            PackedBackend(samples=0)

    def test_exhaustive_cap_without_samples(self):
        wide = random_circuit(2, num_inputs=30, num_gates=20)
        with pytest.raises(AnalysisError, match="--samples"):
            PackedBackend().universe_for(wide)

    def test_wide_circuit_with_samples(self):
        wide = random_circuit(3, num_inputs=30, num_gates=24)
        backend = PackedBackend(samples=64, seed=1)
        table = backend.build_stuck_at(wide)
        assert isinstance(table, PackedDetectionTable)
        assert table.universe.size == 64

    def test_hashable_cache_key(self):
        assert hash(PackedBackend(samples=8, seed=1)) == hash(
            PackedBackend(samples=8, seed=1)
        )
        assert PackedBackend(samples=8) != PackedBackend(samples=9)

    def test_exhaustive_packed_canonicalizes_seed(self):
        """Without samples the universe is exhaustive, so seed and
        replacement must not split the experiment-layer cache key."""
        assert PackedBackend(seed=2005) == PackedBackend()
        assert PackedBackend(replacement=True) == PackedBackend()
        assert PackedBackend(samples=8, seed=1) != PackedBackend(samples=8)

    def test_repeated_single_fault_queries_reuse_scan(self, circuit):
        from repro.core.worst_case import nmin_for_untargeted_fault

        u = FaultUniverse(circuit, backend=PackedBackend())
        table = PackedDetectionTable.from_table(u.target_table)
        g_sig = u.untargeted_table.signatures[0]
        first = nmin_for_untargeted_fault(table, g_sig)
        scan = table._packed_nmin_scan  # built once, then cached
        assert nmin_for_untargeted_fault(table, g_sig) == first
        assert table._packed_nmin_scan is scan
