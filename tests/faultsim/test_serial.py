"""Serial fault-simulation engine unit tests."""

from __future__ import annotations

import pytest

from repro.faults.bridging import BridgingFault
from repro.faults.stuck_at import StuckAtFault
from repro.faultsim.serial import (
    detecting_vectors,
    detects,
    detects_bridging,
    detects_stuck_at,
)
from repro.faultsim.serial import test_set_coverage as coverage_of_test_set


class TestStuckAt:
    def test_known_detections(self, example_circuit):
        c = example_circuit
        f = StuckAtFault(c.lid_of("1"), 1)  # 1/1, T = {4,5,6,7}
        assert detects_stuck_at(c, f, 4)
        assert detects_stuck_at(c, f, 7)
        assert not detects_stuck_at(c, f, 3)
        assert not detects_stuck_at(c, f, 12)

    def test_branch_fault_localized(self, example_circuit):
        """5/1 only affects gate 9, not gate 10 (branch isolation)."""
        c = example_circuit
        f = StuckAtFault(c.lid_of("5"), 1)
        # Vector 10 = 1010: 1=1, 2=0, 3=1, 4=0; 9 flips 0->1.
        assert detects_stuck_at(c, f, 10)
        # Stem fault 2/1 also flips 10 on vector 2 (0010).
        stem = StuckAtFault(c.lid_of("2"), 1)
        assert detects_stuck_at(c, stem, 2)
        assert not detects_stuck_at(c, f, 2)  # branch 5 does not reach 10


class TestBridging:
    def test_g0_detections(self, example_circuit):
        c = example_circuit
        g0 = BridgingFault(c.lid_of("9"), 0, c.lid_of("10"), 1)
        assert detects_bridging(c, g0, 6)
        assert detects_bridging(c, g0, 7)
        for v in (0, 5, 12, 15):
            assert not detects_bridging(c, g0, v)

    def test_activation_requires_both_conditions(self, example_circuit):
        c = example_circuit
        g = BridgingFault(c.lid_of("9"), 1, c.lid_of("10"), 0)
        # Vector 14: 9=1 but 10=1 -> aggressor condition fails.
        assert not detects_bridging(c, g, 14)
        # Vector 12: 9=1, 10=0 -> activated, 9 flips, PO -> detected.
        assert detects_bridging(c, g, 12)


class TestDispatch:
    def test_detects_dispatch(self, example_circuit):
        c = example_circuit
        assert detects(c, StuckAtFault(c.lid_of("1"), 1), 4)
        assert detects(
            c, BridgingFault(c.lid_of("9"), 0, c.lid_of("10"), 1), 6
        )

    def test_unknown_type_rejected(self, example_circuit):
        with pytest.raises(TypeError):
            detects(example_circuit, "not a fault", 0)

    def test_detecting_vectors(self, example_circuit):
        c = example_circuit
        f = StuckAtFault(c.lid_of("1"), 1)
        assert detecting_vectors(c, f, range(16)) == [4, 5, 6, 7]


class TestCoverage:
    def test_full_coverage(self, example_universe):
        c = example_universe.circuit
        detected, total = coverage_of_test_set(
            c, example_universe.target_faults, list(range(16))
        )
        assert detected == total == 16

    def test_partial_coverage(self, example_universe):
        c = example_universe.circuit
        detected, total = coverage_of_test_set(
            c, example_universe.target_faults, [6, 7]
        )
        assert total == 16
        assert detected == 7  # the Table 1 rows
