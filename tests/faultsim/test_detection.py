"""Detection tables: cross-validation against the serial simulator."""

from __future__ import annotations

import pytest

from repro.faults.bridging import four_way_bridging_faults
from repro.faults.stuck_at import collapsed_stuck_at_faults
from repro.faultsim.detection import (
    DetectionTable,
    bridging_detection_signature,
)
from repro.faultsim.serial import detects_bridging, detects_stuck_at
from repro.logic.bitops import set_bits
from repro.simulation.exhaustive import line_signatures


class TestStuckAtTable:
    @pytest.mark.parametrize(
        "fixture", ["example_circuit", "c17_circuit", "majority_circuit"]
    )
    def test_agrees_with_serial_engine(self, fixture, request):
        """The exhaustive engine and the independent per-vector engine
        must produce identical detection sets for every fault."""
        circuit = request.getfixturevalue(fixture)
        table = DetectionTable.for_stuck_at(circuit)
        for i, fault in enumerate(table.faults):
            expected = [
                v
                for v in range(1 << circuit.num_inputs)
                if detects_stuck_at(circuit, fault, v)
            ]
            assert table.vectors(i) == expected, table.fault_name(i)

    def test_undetectable_faults_kept_by_default(self):
        from repro.circuit.builder import CircuitBuilder
        from repro.circuit.gate import GateType

        b = CircuitBuilder("redundant")
        b.input("a")
        b.gate("k", GateType.CONST0, [])
        b.gate("g", GateType.OR, ["a", "k"])
        b.output("g")
        c = b.build()
        table = DetectionTable.for_stuck_at(c)
        # k stuck-at-0 is undetectable (k is already 0).
        undetectable = [
            table.fault_name(i)
            for i in range(len(table))
            if not table.signatures[i]
        ]
        assert "k/0" in undetectable

    def test_drop_undetectable(self):
        from repro.circuit.builder import CircuitBuilder
        from repro.circuit.gate import GateType

        b = CircuitBuilder("redundant")
        b.input("a")
        b.gate("k", GateType.CONST0, [])
        b.gate("g", GateType.OR, ["a", "k"])
        b.output("g")
        c = b.build()
        table = DetectionTable.for_stuck_at(c, drop_undetectable=True)
        assert all(sig for sig in table.signatures)


class TestBridgingTable:
    @pytest.mark.parametrize(
        "fixture", ["example_circuit", "majority_circuit", "and_or_circuit"]
    )
    def test_agrees_with_serial_engine(self, fixture, request):
        circuit = request.getfixturevalue(fixture)
        table = DetectionTable.for_bridging(circuit, drop_undetectable=False)
        for i, fault in enumerate(table.faults):
            expected = [
                v
                for v in range(1 << circuit.num_inputs)
                if detects_bridging(circuit, fault, v)
            ]
            assert table.vectors(i) == expected, table.fault_name(i)

    def test_detectable_only_by_default(self, example_circuit):
        table = DetectionTable.for_bridging(example_circuit)
        assert all(sig for sig in table.signatures)

    def test_activation_semantics(self, example_circuit):
        """(9,0,10,1) activates where fault-free 9=0 and 10=1."""
        c = example_circuit
        sigs = line_signatures(c)
        fault = four_way_bridging_faults(c)[0]
        det = bridging_detection_signature(c, sigs, fault)
        assert set_bits(det) == [6, 7]


class TestTableQueries:
    def test_counts(self, example_universe):
        table = example_universe.target_table
        assert table.counts() == [
            table.signatures[i].bit_count() for i in range(len(table))
        ]
        assert table.count(0) == 4  # T(1/1) = {4,5,6,7}

    def test_detected_by(self, example_universe):
        table = example_universe.target_table
        test_sig = (1 << 6) | (1 << 7)
        hit = table.detected_by(test_sig)
        names = {table.fault_name(i) for i in hit}
        assert names == {"1/1", "2/0", "3/0", "8/0", "9/1", "10/0", "11/0"}

    def test_coverage(self, example_universe):
        table = example_universe.target_table
        full = (1 << 16) - 1
        assert table.coverage(full) == 1.0
        assert table.coverage(0) == 0.0

    def test_detection_counts(self, example_universe):
        table = example_universe.target_table
        counts = table.detection_counts((1 << 6) | (1 << 12))
        by_name = dict(
            zip(
                [table.fault_name(i) for i in range(len(table))],
                counts,
                strict=True,
            )
        )
        assert by_name["1/1"] == 1   # vector 6 only
        assert by_name["2/0"] == 2   # vectors 6 and 12

    def test_vector_cache(self, example_universe):
        table = example_universe.target_table
        assert table.vectors(0) is table.vectors(0)

    def test_mismatched_lengths_rejected(self, example_circuit):
        from repro.errors import FaultError

        faults = collapsed_stuck_at_faults(example_circuit)
        with pytest.raises(FaultError):
            DetectionTable(example_circuit, faults, [0])


class TestExplicitBaseSignatures:
    """Regression: an explicit (if empty) base_signatures list used to
    be silently replaced by a recompute (falsy-list defaulting)."""

    def test_empty_base_signatures_honored(self, example_circuit):
        # The empty list is degenerate, but it must be *used*, not
        # silently swapped for a fresh line-signature computation.
        with pytest.raises(IndexError):
            DetectionTable.for_stuck_at(example_circuit, base_signatures=[])
        with pytest.raises(IndexError):
            DetectionTable.for_bridging(example_circuit, base_signatures=[])

    def test_empty_faults_and_signatures_build_empty_table(
        self, example_circuit
    ):
        table = DetectionTable.for_stuck_at(
            example_circuit, faults=[], base_signatures=[]
        )
        assert len(table) == 0

    def test_explicit_signatures_used(self, example_universe):
        from repro.simulation.exhaustive import line_signatures

        circuit = example_universe.circuit
        sigs = line_signatures(circuit)
        table = DetectionTable.for_stuck_at(circuit, base_signatures=sigs)
        assert table.signatures == example_universe.target_table.signatures
