"""Backend and sampler statistics: universes, draws, estimators, CIs."""

from __future__ import annotations

import pytest

from repro.bench_suite.randlogic import random_circuit
from repro.errors import AnalysisError
from repro.faults.universe import FaultUniverse
from repro.faultsim.backends import (
    BACKEND_NAMES,
    DetectionBackend,
    ExhaustiveBackend,
    SampledBackend,
    SerialBackend,
    default_backend_for,
    make_backend,
)
from repro.faultsim.sampling import (
    VectorUniverse,
    count_interval,
    draw_universe,
    estimate_count,
    estimate_nmin,
)


class TestVectorUniverse:
    def test_exhaustive_identity_mapping(self):
        u = VectorUniverse(3)
        assert u.exhaustive and u.exact
        assert u.size == u.space == 8
        assert u.scale == 1.0
        assert [u.vector_at(b) for b in range(8)] == list(range(8))
        assert u.bit_of(5) == 5

    def test_sampled_mapping(self):
        u = VectorUniverse(4, vectors=(1, 7, 12))
        assert not u.exact
        assert u.size == 3 and u.space == 16
        assert u.vector_at(1) == 7
        assert u.bit_of(12) == 2
        assert u.bit_of(3) is None  # not sampled
        assert u.signature_vectors(0b101) == [1, 12]

    def test_mask_matches_size(self):
        assert VectorUniverse(2).mask == 0b1111
        assert VectorUniverse(4, vectors=(0, 9)).mask == 0b11

    def test_rejects_out_of_range_vectors(self):
        with pytest.raises(AnalysisError, match="out of range"):
            VectorUniverse(2, vectors=(0, 4))

    def test_rejects_unsorted_or_duplicate(self):
        with pytest.raises(AnalysisError, match="sorted"):
            VectorUniverse(3, vectors=(5, 2))
        with pytest.raises(AnalysisError, match="unique"):
            VectorUniverse(3, vectors=(2, 2))
        # Hand-built replacement universes may still carry duplicates
        # (back-compat for explicitly constructed universes), but
        # draw_universe itself never produces them any more.
        assert VectorUniverse(3, vectors=(2, 2), replacement=True).size == 2

    def test_vector_at_out_of_range(self):
        with pytest.raises(AnalysisError, match="out of range"):
            VectorUniverse(4, vectors=(1, 2)).vector_at(2)


class TestDrawUniverse:
    def test_seeded_reproducibility(self):
        a = draw_universe(8, 40, seed=5)
        b = draw_universe(8, 40, seed=5)
        c = draw_universe(8, 40, seed=6)
        assert a == b
        assert a != c

    def test_without_replacement_unique_sorted(self):
        u = draw_universe(10, 200, seed=1)
        assert len(set(u.vectors)) == 200
        assert list(u.vectors) == sorted(u.vectors)
        assert all(0 <= v < 1024 for v in u.vectors)

    def test_full_draw_canonicalizes_to_exhaustive(self):
        u = draw_universe(5, 32, seed=3)
        assert u.exhaustive
        assert u == VectorUniverse(5)

    def test_oversized_draw_rejected(self):
        with pytest.raises(AnalysisError, match="cannot draw"):
            draw_universe(4, 17, seed=0)

    def test_replacement_draws_are_distinct(self):
        # Regression (adaptive-sampling PR): replacement draws used to
        # let duplicate vectors occupy distinct signature bits, silently
        # double-counting them in every popcount estimator.  The draw is
        # now topped up to K *unique* vectors.
        u = draw_universe(3, 6, seed=3, replacement=True)
        assert u.size == 6 and u.replacement
        assert len(set(u.vectors)) == 6

    def test_replacement_oversized_rejected(self):
        # ...which also means a replacement draw cannot exceed |U|.
        with pytest.raises(AnalysisError, match="cannot draw"):
            draw_universe(2, 10, seed=0, replacement=True)

    def test_draw_beyond_exhaustive_cap(self):
        # The whole point of the sampler: p > 24 draws work fine.
        u = draw_universe(32, 64, seed=2)
        assert u.size == 64
        assert all(0 <= v < (1 << 32) for v in u.vectors)

    def test_invalid_sizes(self):
        with pytest.raises(AnalysisError, match="samples"):
            draw_universe(4, 0)


class TestEstimators:
    def test_exact_universe_is_identity(self):
        u = VectorUniverse(4)
        assert estimate_count(u, 9) == 9.0
        ci = count_interval(u, 9)
        assert ci.low == ci.estimate == ci.high == 9.0

    def test_scaling(self):
        u = VectorUniverse(4, vectors=(0, 1, 2, 3))  # 4 of 16: scale 4
        assert estimate_count(u, 2) == 8.0
        assert estimate_nmin(u, 3) == 4 * 2 + 1
        assert estimate_nmin(u, 1) == 1.0
        assert estimate_nmin(u, None) is None
        assert estimate_nmin(VectorUniverse(4), 3) == 3

    def test_interval_brackets_estimate(self):
        u = draw_universe(10, 100, seed=4)
        ci = count_interval(u, 37, confidence=0.9)
        assert 0.0 <= ci.low <= ci.estimate <= ci.high <= u.space
        assert ci.half_width > 0
        wider = count_interval(u, 37, confidence=0.99)
        assert wider.half_width > ci.half_width

    def test_interval_input_validation(self):
        u = draw_universe(6, 10, seed=0)
        with pytest.raises(AnalysisError, match="out of range"):
            estimate_count(u, 11)
        with pytest.raises(AnalysisError, match="confidence"):
            count_interval(u, 5, confidence=1.5)

    def test_coverage_on_known_count(self):
        """~90% CIs cover the exact N(f) at least ~nominally often.

        The finite-population correction makes the intervals
        conservative, so the observed coverage (calibrated: 40/40 on
        these seeds) sits above the nominal rate.
        """
        circuit = random_circuit(11, num_inputs=6, num_gates=14)
        exact_table = FaultUniverse(circuit).target_table
        # A balanced fault (N(f) near |U|/2) stresses the interval most.
        counts = exact_table.counts()
        fault = max(range(len(counts)), key=lambda i: min(counts[i], 64 - counts[i]))
        hits = 0
        trials = 40
        for seed in range(trials):
            table = FaultUniverse(
                circuit, backend=SampledBackend(32, seed=seed)
            ).target_table
            ci = table.count_estimate(fault, confidence=0.90)
            assert ci.half_width > 0  # genuinely an interval
            if ci.covers(counts[fault]):
                hits += 1
        assert hits >= int(0.80 * trials)


class TestBackendObjects:
    def test_protocol_conformance(self):
        for backend in (
            ExhaustiveBackend(),
            SampledBackend(8),
            SerialBackend(),
        ):
            assert isinstance(backend, DetectionBackend)

    def test_make_backend_names(self):
        assert make_backend("exhaustive") == ExhaustiveBackend()
        assert make_backend("serial") == SerialBackend()
        assert make_backend("sampled", samples=16, seed=3) == SampledBackend(
            16, seed=3
        )
        assert set(BACKEND_NAMES) == {
            "exhaustive", "sampled", "serial", "packed", "adaptive",
        }

    def test_make_backend_errors(self):
        with pytest.raises(AnalysisError, match="unknown backend"):
            make_backend("turbo")
        with pytest.raises(AnalysisError, match="requires --samples"):
            make_backend("sampled")
        with pytest.raises(AnalysisError, match="samples"):
            SampledBackend(0)

    def test_backends_are_hashable_cache_keys(self):
        assert hash(SampledBackend(8, seed=1)) == hash(SampledBackend(8, seed=1))
        assert SampledBackend(8, seed=1) != SampledBackend(8, seed=2)

    def test_serial_backend_input_cap(self):
        circuit = random_circuit(1, num_inputs=18, num_gates=20)
        with pytest.raises(AnalysisError, match="capped"):
            SerialBackend(max_inputs=16).build_stuck_at(circuit)

    def test_default_backend_picks_by_width(self):
        small = random_circuit(1, num_inputs=4, num_gates=6)
        wide = random_circuit(2, num_inputs=30, num_gates=40)
        assert default_backend_for(small) == ExhaustiveBackend()
        assert isinstance(default_backend_for(wide), SampledBackend)

    def test_sampled_reproducible_tables(self):
        circuit = random_circuit(3, num_inputs=6, num_gates=12)
        t1 = SampledBackend(16, seed=9).build_stuck_at(circuit)
        t2 = SampledBackend(16, seed=9).build_stuck_at(circuit)
        t3 = SampledBackend(16, seed=10).build_stuck_at(circuit)
        assert t1.signatures == t2.signatures
        assert t1.universe == t2.universe
        assert t1.universe != t3.universe

    def test_fault_universe_shares_base_signatures(self):
        circuit = random_circuit(4, num_inputs=5, num_gates=10)
        u = FaultUniverse(circuit, backend=SampledBackend(8, seed=1))
        assert u.target_table.universe == u.untargeted_table.universe
        assert u.backend.name == "sampled"

    def test_serial_universe_skips_base_signatures(self):
        # The serial engine ignores base signatures; FaultUniverse must
        # not compute its expensive per-vector sweep just to discard it.
        circuit = random_circuit(4, num_inputs=5, num_gates=10)
        u = FaultUniverse(circuit, backend=SerialBackend())
        u.target_table
        u.untargeted_table
        assert "base_signatures" not in u.__dict__  # never materialized
