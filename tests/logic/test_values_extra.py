"""Algebraic laws of the 3-valued system (completeness of the algebra).

These pin down the Kleene-logic structure the simulators rely on:
associativity/absorption in the definite fragment, monotonicity under
information refinement (X -> 0/1), and the pessimism property that makes
Definition 2's tij verdicts sound.
"""

from __future__ import annotations

import itertools

from repro.logic.values import ONE, X, ZERO, v3_and, v3_not, v3_or, v3_xor

ALL = (ZERO, ONE, X)


def _refinements(v):
    """All definite values consistent with a 3-valued value."""
    return (0, 1) if v == X else (v,)


class TestKleeneLaws:
    def test_and_associative(self):
        for a, b, c in itertools.product(ALL, repeat=3):
            assert v3_and(v3_and(a, b), c) == v3_and(a, v3_and(b, c))

    def test_or_associative(self):
        for a, b, c in itertools.product(ALL, repeat=3):
            assert v3_or(v3_or(a, b), c) == v3_or(a, v3_or(b, c))

    def test_distribution(self):
        for a, b, c in itertools.product(ALL, repeat=3):
            assert v3_and(a, v3_or(b, c)) == v3_or(
                v3_and(a, b), v3_and(a, c)
            )

    def test_absorption(self):
        for a, b in itertools.product(ALL, repeat=2):
            assert v3_or(a, v3_and(a, b)) == a
            assert v3_and(a, v3_or(a, b)) == a

    def test_no_excluded_middle_with_x(self):
        # Kleene logic: a OR NOT a is X when a is X (not a tautology).
        assert v3_or(X, v3_not(X)) == X


class TestMonotonicity:
    """Refining X to a definite value never flips a definite result."""

    def test_all_binary_ops(self):
        for op in (v3_and, v3_or, v3_xor):
            for a, b in itertools.product(ALL, repeat=2):
                out = op(a, b)
                if out == X:
                    continue
                for ra in _refinements(a):
                    for rb in _refinements(b):
                        assert op(ra, rb) == out, (op.__name__, a, b)

    def test_not(self):
        for a in ALL:
            out = v3_not(a)
            if out == X:
                continue
            for ra in _refinements(a):
                assert v3_not(ra) == out


class TestPessimism:
    """A definite 3-valued output means ALL completions agree — but not
    conversely (the X result may hide a constant function)."""

    def test_xor_self_is_pessimistic(self):
        # x XOR x == 0 for every completion, yet the algebra says X:
        # 3-valued simulation may under-approximate, never lie.
        assert v3_xor(X, X) == X
