"""Unit + property tests for signature helpers."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.bitops import (
    MAX_EXHAUSTIVE_INPUTS,
    all_ones_mask,
    input_signature,
    iter_set_bits,
    popcount,
    random_set_bit,
    select_kth_set_bit,
    set_bits,
    signature_from_vectors,
    vectors_from_signature,
)


class TestMask:
    def test_small(self):
        assert all_ones_mask(0) == 1
        assert all_ones_mask(1) == 0b11
        assert all_ones_mask(2) == 0xF
        assert all_ones_mask(4) == 0xFFFF

    def test_bounds(self):
        with pytest.raises(ValueError):
            all_ones_mask(-1)
        with pytest.raises(ValueError):
            all_ones_mask(MAX_EXHAUSTIVE_INPUTS + 1)


class TestInputSignature:
    def test_paper_convention(self):
        """Input 1 (index 0) is the MSB of the decimal vector."""
        # 4-input circuit: input 1 is set on vectors 8..15.
        sig = input_signature(0, 4)
        assert set_bits(sig) == list(range(8, 16))
        # Input 4 (index 3) is the LSB: odd vectors.
        sig = input_signature(3, 4)
        assert set_bits(sig) == [v for v in range(16) if v & 1]

    @pytest.mark.parametrize("p", [1, 2, 3, 5, 8])
    def test_matches_bit_extraction(self, p):
        for j in range(p):
            sig = input_signature(j, p)
            for v in range(1 << p):
                expected = (v >> (p - 1 - j)) & 1
                assert (sig >> v) & 1 == expected

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            input_signature(4, 4)
        with pytest.raises(ValueError):
            input_signature(-1, 4)

    def test_popcount_half(self):
        for p in range(1, 8):
            for j in range(p):
                assert popcount(input_signature(j, p)) == 1 << (p - 1)


class TestBitLists:
    def test_round_trip(self):
        vectors = [0, 3, 7, 12, 15]
        sig = signature_from_vectors(vectors, 4)
        assert vectors_from_signature(sig) == vectors

    def test_iter_matches_list(self):
        sig = 0b1011001
        assert list(iter_set_bits(sig)) == set_bits(sig)

    def test_range_check(self):
        with pytest.raises(ValueError):
            signature_from_vectors([16], 4)

    @given(st.integers(min_value=0, max_value=(1 << 96) - 1))
    @settings(max_examples=200)
    def test_set_bits_reconstructs(self, sig):
        assert sum(1 << b for b in set_bits(sig)) == sig

    @given(st.integers(min_value=0, max_value=(1 << 96) - 1))
    @settings(max_examples=200)
    def test_popcount_matches_len(self, sig):
        assert popcount(sig) == len(set_bits(sig))


class TestRandomSetBit:
    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            random_set_bit(0, random.Random(1))

    def test_single_bit(self):
        assert random_set_bit(1 << 7, random.Random(1)) == 7

    def test_always_a_set_bit(self):
        rng = random.Random(42)
        sig = signature_from_vectors([1, 5, 9, 11], 4)
        for _ in range(100):
            assert (sig >> random_set_bit(sig, rng)) & 1

    def test_sparse_signature(self):
        rng = random.Random(7)
        sig = (1 << 4000) | (1 << 17)
        hits = {random_set_bit(sig, rng) for _ in range(50)}
        assert hits <= {17, 4000}
        assert len(hits) == 2  # both eventually drawn

    def test_roughly_uniform(self):
        rng = random.Random(3)
        sig = signature_from_vectors(list(range(8)), 3)
        counts = [0] * 8
        for _ in range(4000):
            counts[random_set_bit(sig, rng)] += 1
        assert min(counts) > 300  # each ~500 expected


class _ScriptedRng:
    """Stand-in rng whose randrange returns a scripted sequence."""

    def __init__(self, values):
        self.values = list(values)
        self.calls = 0

    def randrange(self, n):
        self.calls += 1
        value = self.values.pop(0)
        assert 0 <= value < n
        return value


class TestSelectKthSetBit:
    @given(st.integers(min_value=1, max_value=(1 << 300) - 1))
    @settings(max_examples=200)
    def test_matches_set_bits(self, sig):
        bits = set_bits(sig)
        for k in (0, len(bits) // 2, len(bits) - 1):
            assert select_kth_set_bit(sig, k) == bits[k]

    def test_spans_leaf_boundary(self):
        # Bits on both sides of the 256-bit leaf width.
        sig = (1 << 5) | (1 << 255) | (1 << 256) | (1 << 70000)
        assert [select_kth_set_bit(sig, k) for k in range(4)] == [
            5, 255, 256, 70000,
        ]

    def test_errors(self):
        with pytest.raises(ValueError):
            select_kth_set_bit(0b101, 2)
        with pytest.raises(ValueError):
            select_kth_set_bit(0b101, -1)
        with pytest.raises(ValueError):
            select_kth_set_bit(0, 0)


class TestDensePathFallback:
    """Regression: 32 failed rejection tries on a huge dense signature
    must NOT materialize the full set-bit list (the old fallback did)."""

    def test_fallback_uses_rank_selection(self):
        # Dense signature (every bit but one set) over a large width.
        width = 1 << 16
        missing = 12345
        sig = ((1 << width) - 1) ^ (1 << missing)
        # Script 32 rejection misses (always the cleared bit), then the
        # rank draw: k = 100 -> the 100th set bit (index 100, < missing).
        rng = _ScriptedRng([missing] * 32 + [100])
        assert random_set_bit(sig, rng) == 100
        assert rng.calls == 33

    def test_fallback_rank_after_hole(self):
        width = 1 << 12
        missing = 7
        sig = ((1 << width) - 1) ^ (1 << missing)
        # Ranks at/after the hole shift by one.
        rng = _ScriptedRng([missing] * 32 + [7])
        assert random_set_bit(sig, rng) == 8

    def test_sparse_signature_uses_rank_selection(self):
        # Sparse path: rejection is skipped, a single rank draw decides.
        sig = (1 << 9) | (1 << 900) | (1 << 90000)
        rng = _ScriptedRng([1])
        assert random_set_bit(sig, rng) == 900
        assert rng.calls == 1
