"""Packed signature matrices: exact, bit-order-preserving conversions."""

from __future__ import annotations

import random

import pytest

np = pytest.importorskip("numpy")

from repro.errors import AnalysisError
from repro.logic.packed import (
    PackedSignatureMatrix,
    and_popcount,
    pack_signature,
    popcount_words,
    unpack_signature,
    words_for,
)


def random_signatures(rng, size, count):
    return [rng.getrandbits(size) for _ in range(count)]


class TestWordGeometry:
    def test_words_for(self):
        assert words_for(0) == 1
        assert words_for(1) == 1
        assert words_for(64) == 1
        assert words_for(65) == 2
        assert words_for(2048) == 32

    def test_words_for_rejects_negative(self):
        with pytest.raises(AnalysisError, match=">= 0"):
            words_for(-1)


class TestPackUnpack:
    @pytest.mark.parametrize("size", [1, 7, 63, 64, 65, 128, 300, 1024])
    def test_roundtrip_is_identity(self, size):
        rng = random.Random(size)
        for sig in random_signatures(rng, size, 20):
            assert unpack_signature(pack_signature(sig, size)) == sig

    def test_bit_order_preserved(self):
        # Bit i of the big int lives in word i // 64, position i % 64.
        for i in (0, 1, 63, 64, 100, 127):
            row = pack_signature(1 << i, 128)
            assert int(row[i // 64]) == 1 << (i % 64)

    def test_rejects_out_of_range_bits(self):
        with pytest.raises(AnalysisError, match="beyond"):
            pack_signature(1 << 10, 10)
        with pytest.raises(AnalysisError, match="non-negative"):
            pack_signature(-1, 10)


class TestMatrixConversion:
    @pytest.mark.parametrize("size", [5, 64, 100, 257])
    def test_bigint_roundtrip(self, size):
        rng = random.Random(size * 7)
        sigs = random_signatures(rng, size, 17)
        m = PackedSignatureMatrix.from_bigints(sigs, size)
        assert len(m) == 17
        assert m.to_bigints() == sigs
        for i, sig in enumerate(sigs):
            assert m.row_bigint(i) == sig

    def test_empty_matrix(self):
        m = PackedSignatureMatrix.from_bigints([], 12)
        assert len(m) == 0
        assert m.to_bigints() == []
        assert list(m.popcount_rows()) == []

    def test_rejects_oversized_signature(self):
        with pytest.raises(AnalysisError, match="beyond"):
            PackedSignatureMatrix.from_bigints([1 << 8], 8)

    def test_equality(self):
        a = PackedSignatureMatrix.from_bigints([3, 5], 8)
        b = PackedSignatureMatrix.from_bigints([3, 5], 8)
        c = PackedSignatureMatrix.from_bigints([3, 6], 8)
        assert a == b
        assert a != c


class TestPopcounts:
    @pytest.mark.parametrize("size", [9, 64, 130, 1000])
    def test_popcount_rows_matches_bit_count(self, size):
        rng = random.Random(size * 3)
        sigs = random_signatures(rng, size, 25)
        m = PackedSignatureMatrix.from_bigints(sigs, size)
        assert list(m.popcount_rows()) == [s.bit_count() for s in sigs]

    @pytest.mark.parametrize("size", [9, 64, 130, 1000])
    def test_and_popcount_matches_bigint(self, size):
        rng = random.Random(size * 5)
        sigs = random_signatures(rng, size, 25)
        m = PackedSignatureMatrix.from_bigints(sigs, size)
        for probe in random_signatures(rng, size, 5):
            row = pack_signature(probe, size)
            expected = [(s & probe).bit_count() for s in sigs]
            assert list(m.and_popcount(row)) == expected
            assert list(and_popcount(row, m)) == expected

    def test_and_popcount_rejects_mismatched_row(self):
        m = PackedSignatureMatrix.from_bigints([1], 64)
        with pytest.raises(AnalysisError, match="word count"):
            m.and_popcount(pack_signature(1, 130))

    def test_popcount_words_shapes(self):
        a = np.array([[1, 3], [7, 255]], dtype=np.uint64)
        assert popcount_words(a).sum() == 1 + 2 + 3 + 8


class TestTake:
    def test_take_reorders_rows(self):
        sigs = [0b1, 0b11, 0b111]
        m = PackedSignatureMatrix.from_bigints(sigs, 8)
        t = m.take([2, 0])
        assert t.to_bigints() == [0b111, 0b1]
        assert t.size == 8
