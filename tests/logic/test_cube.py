"""Unit + property tests for partially-specified vectors (cubes)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.cube import Cube, common_cube
from repro.logic.values import ONE, X, ZERO


class TestConstruction:
    def test_full(self):
        c = Cube.full(6, 4)
        assert c.is_fully_specified
        assert str(c) == "0110"

    def test_full_range(self):
        with pytest.raises(ValueError):
            Cube.full(16, 4)

    def test_empty(self):
        c = Cube.empty(3)
        assert str(c) == "xxx"
        assert c.num_completions == 8

    def test_from_string(self):
        c = Cube.from_string("01x1")
        assert c.get(0) == ZERO
        assert c.get(1) == ONE
        assert c.get(2) == X
        assert c.get(3) == ONE

    def test_from_string_rejects(self):
        with pytest.raises(ValueError):
            Cube.from_string("01z")

    def test_value_normalized_to_care(self):
        c = Cube(4, care=0b1000, value=0b1010)
        assert c.value == 0b1000


class TestAccess:
    def test_with_input_round_trip(self):
        c = Cube.empty(4)
        c = c.with_input(1, ONE)
        assert str(c) == "x1xx"
        c = c.with_input(1, X)
        assert str(c) == "xxxx"
        c = c.with_input(3, ZERO)
        assert str(c) == "xxx0"

    def test_with_input_bad_value(self):
        with pytest.raises(ValueError):
            Cube.empty(2).with_input(0, 5)

    def test_index_bounds(self):
        with pytest.raises(IndexError):
            Cube.empty(2).get(2)


class TestCompletions:
    def test_counts(self):
        c = Cube.from_string("1x0x")
        assert c.num_completions == 4
        assert c.completions() == [8, 9, 12, 13]

    def test_contains(self):
        c = Cube.from_string("1x0x")
        for v in range(16):
            assert c.contains_vector(v) == (v in (8, 9, 12, 13))

    def test_completion_signature(self):
        c = Cube.from_string("1x0x")
        assert c.completion_signature() == (1 << 8) | (1 << 9) | (1 << 12) | (1 << 13)


class TestAlgebra:
    def test_intersects(self):
        a = Cube.from_string("1x0x")
        b = Cube.from_string("110x")
        assert a.intersects(b)
        assert a.intersection(b) == Cube.from_string("110x")

    def test_disjoint(self):
        a = Cube.from_string("1xxx")
        b = Cube.from_string("0xxx")
        assert not a.intersects(b)
        assert a.intersection(b) is None

    def test_width_mismatch(self):
        with pytest.raises(ValueError):
            Cube.empty(3).intersects(Cube.empty(4))


class TestCommonCube:
    def test_paper_semantics(self):
        """tij is specified exactly where ti and tj agree."""
        t = common_cube(0b0110, 0b0111, 4)
        assert str(t) == "011x"

    def test_identical_tests(self):
        t = common_cube(5, 5, 4)
        assert t.is_fully_specified
        assert t.value == 5

    def test_complement_tests(self):
        t = common_cube(0b1010, 0b0101, 4)
        assert t.num_specified == 0

    def test_range_check(self):
        with pytest.raises(ValueError):
            common_cube(16, 0, 4)

    @given(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
    )
    @settings(max_examples=200)
    def test_both_tests_are_completions(self, ti, tj):
        c = common_cube(ti, tj, 8)
        assert c.contains_vector(ti)
        assert c.contains_vector(tj)

    @given(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
    )
    @settings(max_examples=200)
    def test_specified_count(self, ti, tj):
        c = common_cube(ti, tj, 8)
        assert c.num_specified == 8 - bin(ti ^ tj).count("1")
