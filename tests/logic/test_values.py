"""Unit tests for the scalar 3-valued algebra."""

from __future__ import annotations

import pytest

from repro.logic.values import (
    ONE,
    X,
    ZERO,
    v3_and,
    v3_from_char,
    v3_not,
    v3_or,
    v3_to_char,
    v3_xor,
)

ALL = (ZERO, ONE, X)


class TestNot:
    def test_truth_table(self):
        assert v3_not(ZERO) == ONE
        assert v3_not(ONE) == ZERO
        assert v3_not(X) == X

    def test_involution(self):
        for v in ALL:
            assert v3_not(v3_not(v)) == v

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            v3_not(3)


class TestAnd:
    def test_controlling_zero(self):
        for v in ALL:
            assert v3_and(ZERO, v) == ZERO
            assert v3_and(v, ZERO) == ZERO

    def test_one_one(self):
        assert v3_and(ONE, ONE) == ONE

    def test_x_propagation(self):
        assert v3_and(ONE, X) == X
        assert v3_and(X, X) == X

    def test_commutative(self):
        for a in ALL:
            for b in ALL:
                assert v3_and(a, b) == v3_and(b, a)


class TestOr:
    def test_controlling_one(self):
        for v in ALL:
            assert v3_or(ONE, v) == ONE
            assert v3_or(v, ONE) == ONE

    def test_zero_zero(self):
        assert v3_or(ZERO, ZERO) == ZERO

    def test_x_propagation(self):
        assert v3_or(ZERO, X) == X
        assert v3_or(X, X) == X

    def test_de_morgan(self):
        for a in ALL:
            for b in ALL:
                assert v3_not(v3_and(a, b)) == v3_or(v3_not(a), v3_not(b))


class TestXor:
    def test_definite(self):
        assert v3_xor(ZERO, ZERO) == ZERO
        assert v3_xor(ONE, ZERO) == ONE
        assert v3_xor(ZERO, ONE) == ONE
        assert v3_xor(ONE, ONE) == ZERO

    def test_x_dominates(self):
        for v in ALL:
            assert v3_xor(X, v) == X
            assert v3_xor(v, X) == X


class TestChars:
    def test_round_trip(self):
        for v in ALL:
            assert v3_from_char(v3_to_char(v)) == v

    def test_aliases(self):
        assert v3_from_char("-") == X
        assert v3_from_char("X") == X

    def test_bad_char(self):
        with pytest.raises(ValueError):
            v3_from_char("2")

    def test_bad_value(self):
        with pytest.raises(ValueError):
            v3_to_char(7)
