"""Differential cross-validation of the detection-table backends.

The tentpole guarantee of the multi-backend architecture: the three
engines agree wherever their domains overlap.

* exhaustive vs serial — two engines sharing no signature machinery
  must produce *identical* detection tables;
* full-sample sampled-U (``K = 2**p``, without replacement) — the
  Monte-Carlo engine degenerates to the exact exhaustive result, bit for
  bit (its universe canonicalizes to the exhaustive mapping);
* sampled-U with ``K < 2**p`` — popcount estimates land near the exact
  ``N(f)`` / ``nmin`` values, averaged over seeds;
* sharded multiprocessing (``ParallelBackend(jobs=2)``) over any base
  engine — signatures, counts, ``nmin`` records, and ``guaranteed_n``
  are *bit-identical* to the single-process build, on random and suite
  circuits alike (``REPRO_DIFF_SUITE=full`` sweeps every suite
  circuit, as the CI workflow does);
* the adaptive controller — same seed implies a bit-identical
  trajectory (round sizes, allocations, universes, tables) across
  ``jobs=1`` vs ``jobs=2``, across the big-int and numpy-packed
  representations, uniform and stratified alike; and a budget covering
  ``2**p`` canonicalizes to the exact exhaustive result, like the
  full-sample sampled draw does.

The numpy-packed engine's differential suite lives in
``tests/test_packed_differential.py`` (kept separate so this module
still runs on numpy-less installs; the packed-base parallel case below
guards its numpy import the same way).
"""

from __future__ import annotations

import os
import statistics

import pytest

from repro.bench_suite.randlogic import random_circuit
from repro.bench_suite.registry import suite_table_groups
from repro.core.average_case import AverageCaseAnalysis
from repro.core.escape import EscapeAnalysis
from repro.core.procedure1 import build_random_ndetection_sets
from repro.core.worst_case import WorstCaseAnalysis
from repro.errors import AnalysisError
from repro.faults.universe import FaultUniverse
from repro.faultsim.backends import (
    ExhaustiveBackend,
    SampledBackend,
    SerialBackend,
)
from repro.parallel import ParallelBackend

#: Representative tier-1 subset; REPRO_DIFF_SUITE=full sweeps them all.
_SUITE_SUBSET = ("lion", "train4", "mc", "s8", "beecount")


def _suite_circuits() -> list[str]:
    if os.environ.get("REPRO_DIFF_SUITE") == "full":
        return list(suite_table_groups())
    return list(_SUITE_SUBSET)


def _tables(circuit, backend):
    u = FaultUniverse(circuit, backend=backend)
    return u.target_table, u.untargeted_table


def _assert_identical(a, b):
    assert a.faults == b.faults
    assert a.signatures == b.signatures
    assert a.universe == b.universe


class TestExactEnginesAgree:
    """Exhaustive, serial, and full-sample sampled-U are the same table."""

    @pytest.mark.parametrize(
        "seed,p,gates",
        [(1, 4, 10), (2, 5, 12), (3, 5, 14), (4, 6, 14), (5, 6, 12)],
    )
    def test_three_way_differential(self, seed, p, gates):
        circuit = random_circuit(seed, num_inputs=p, num_gates=gates)
        exh_f, exh_g = _tables(circuit, ExhaustiveBackend())
        ser_f, ser_g = _tables(circuit, SerialBackend())
        ful_f, ful_g = _tables(
            circuit, SampledBackend(1 << p, seed=seed + 100)
        )
        _assert_identical(exh_f, ser_f)
        _assert_identical(exh_g, ser_g)
        _assert_identical(exh_f, ful_f)
        _assert_identical(exh_g, ful_g)

    @pytest.mark.parametrize("seed,p,gates", [(6, 8, 16), (7, 10, 18)])
    def test_full_sample_degenerates_to_exhaustive(self, seed, p, gates):
        # Larger p: the serial engine is too slow, but the full-coverage
        # sampled draw must still match the exhaustive engine exactly.
        circuit = random_circuit(seed, num_inputs=p, num_gates=gates)
        exh_f, exh_g = _tables(circuit, ExhaustiveBackend())
        ful_f, ful_g = _tables(circuit, SampledBackend(1 << p, seed=seed))
        assert ful_f.universe.exhaustive  # canonicalized full draw
        _assert_identical(exh_f, ful_f)
        _assert_identical(exh_g, ful_g)

    def test_full_sample_worst_case_matches(self):
        circuit = random_circuit(8, num_inputs=6, num_gates=14)
        exh_f, exh_g = _tables(circuit, ExhaustiveBackend())
        ful_f, ful_g = _tables(circuit, SampledBackend(64, seed=9))
        exact = WorstCaseAnalysis(exh_f, exh_g)
        full = WorstCaseAnalysis(ful_f, ful_g)
        assert exact.nmin_values() == full.nmin_values()
        assert full.estimated_nmin_values() == full.nmin_values()


class TestParallelDifferential:
    """``ParallelBackend(jobs=2)`` ≡ the single-process build, bit for bit.

    Sweeps every base engine; the shard cache is disabled so each case
    measures a real sharded construction, not a replay.
    """

    @staticmethod
    def _parallel(base):
        return ParallelBackend(base=base, jobs=2, use_cache=False)

    def _assert_equivalent(self, circuit, base):
        single = FaultUniverse(circuit, backend=base)
        parallel = FaultUniverse(circuit, backend=self._parallel(base))
        for mine, theirs in (
            (parallel.target_table, single.target_table),
            (parallel.untargeted_table, single.untargeted_table),
        ):
            assert mine.faults == theirs.faults
            assert mine.signatures == theirs.signatures
            assert mine.universe == theirs.universe
            assert mine.counts() == theirs.counts()
        single_analysis = WorstCaseAnalysis(
            single.target_table, single.untargeted_table
        )
        parallel_analysis = WorstCaseAnalysis(
            parallel.target_table, parallel.untargeted_table
        )
        assert parallel_analysis.records == single_analysis.records
        assert parallel_analysis.guaranteed_n() == (
            single_analysis.guaranteed_n()
        )

    @pytest.mark.parametrize("seed,p,gates", [(21, 5, 12), (22, 6, 14)])
    def test_exhaustive_base_random(self, seed, p, gates):
        circuit = random_circuit(seed, num_inputs=p, num_gates=gates)
        self._assert_equivalent(circuit, ExhaustiveBackend())

    @pytest.mark.parametrize("seed,p,gates", [(23, 6, 14), (24, 7, 16)])
    def test_sampled_base_random(self, seed, p, gates):
        circuit = random_circuit(seed, num_inputs=p, num_gates=gates)
        self._assert_equivalent(
            circuit, SampledBackend(24, seed=seed)
        )

    def test_packed_base_random(self):
        pytest.importorskip("numpy")
        from repro.faultsim.backends import PackedBackend

        circuit = random_circuit(25, num_inputs=6, num_gates=14)
        self._assert_equivalent(circuit, PackedBackend())
        self._assert_equivalent(circuit, PackedBackend(samples=24, seed=9))

    def test_serial_base_random(self):
        circuit = random_circuit(26, num_inputs=5, num_gates=12)
        self._assert_equivalent(circuit, SerialBackend())

    @pytest.mark.parametrize("name", _suite_circuits())
    def test_suite_circuit(self, name):
        from repro.bench_suite.registry import get_circuit

        self._assert_equivalent(get_circuit(name), ExhaustiveBackend())


class TestQueueExecutorDifferential:
    """Distributed queue builds ≡ inline builds, bit for bit.

    Every case publishes its shards to a filesystem work queue and lets
    real :class:`~repro.parallel.QueueWorker` drain loops (two of them,
    racing for claims) produce the results — the exact machinery behind
    ``repro worker --queue DIR``, minus the process boundary that the
    workqueue/CLI tests and the CI distributed-smoke job cover.  The
    local shard cache is disabled so each case measures a real
    distributed construction, not a replay.
    """

    @staticmethod
    def _queue_backend(base, tmp_path):
        from repro.parallel import QueueExecutor

        return ParallelBackend(
            base=base,
            use_cache=False,
            executor=QueueExecutor(
                queue_dir=str(tmp_path / "queue"),
                poll_interval=0.01,
                wait_timeout=300.0,
            ),
        )

    @staticmethod
    def _workers(tmp_path, count=2):
        import threading

        from repro.parallel import QueueWorker, WorkQueue

        def serve():
            QueueWorker(
                WorkQueue(tmp_path / "queue"), poll_interval=0.01
            ).serve(idle_exit=5.0)

        threads = [
            threading.Thread(target=serve, daemon=True)
            for _ in range(count)
        ]
        for thread in threads:
            thread.start()
        return threads

    def _assert_equivalent(self, circuit, base, tmp_path):
        self._workers(tmp_path)
        inline = FaultUniverse(circuit, backend=base)
        queued = FaultUniverse(
            circuit, backend=self._queue_backend(base, tmp_path)
        )
        for mine, theirs in (
            (queued.target_table, inline.target_table),
            (queued.untargeted_table, inline.untargeted_table),
        ):
            assert mine.faults == theirs.faults
            assert mine.signatures == theirs.signatures
            assert mine.universe == theirs.universe
        queue_analysis = WorstCaseAnalysis(
            queued.target_table, queued.untargeted_table
        )
        inline_analysis = WorstCaseAnalysis(
            inline.target_table, inline.untargeted_table
        )
        assert queue_analysis.records == inline_analysis.records
        assert queue_analysis.guaranteed_n() == (
            inline_analysis.guaranteed_n()
        )

    def test_exhaustive_base(self, tmp_path):
        circuit = random_circuit(41, num_inputs=5, num_gates=12)
        self._assert_equivalent(circuit, ExhaustiveBackend(), tmp_path)

    def test_sampled_base(self, tmp_path):
        circuit = random_circuit(42, num_inputs=7, num_gates=16)
        self._assert_equivalent(
            circuit, SampledBackend(24, seed=42), tmp_path
        )

    def test_packed_base(self, tmp_path):
        pytest.importorskip("numpy")
        from repro.faultsim.backends import PackedBackend

        circuit = random_circuit(43, num_inputs=6, num_gates=14)
        self._assert_equivalent(
            circuit, PackedBackend(samples=24, seed=9), tmp_path
        )

    def test_serial_base(self, tmp_path):
        circuit = random_circuit(44, num_inputs=5, num_gates=12)
        self._assert_equivalent(circuit, SerialBackend(), tmp_path)

    @pytest.mark.parametrize("name", _suite_circuits()[:2])
    def test_suite_circuit(self, name, tmp_path):
        from repro.bench_suite.registry import get_circuit

        self._assert_equivalent(
            get_circuit(name), ExhaustiveBackend(), tmp_path
        )

    def test_adaptive_rounds_distribute(self, tmp_path):
        """Per-round adaptive delta builds through the queue: the
        trajectory is bit-identical to the single-process run."""
        from repro.adaptive import AdaptiveSampler, StoppingRule
        from repro.parallel import QueueExecutor

        circuit = random_circuit(45, num_inputs=6, num_gates=14)
        rule = StoppingRule(
            target_halfwidth=0.2, initial_samples=8, max_samples=48,
            k_smallest=4,
        )

        def run(executor=None):
            return AdaptiveSampler(
                circuit, rule=rule, seed=5, representation="bigint",
                executor=executor, use_cache=False,
            ).run()

        self._workers(tmp_path)
        queued = run(
            QueueExecutor(
                queue_dir=str(tmp_path / "queue"),
                poll_interval=0.01,
                wait_timeout=300.0,
            )
        )
        plain = run()
        assert [
            (r.k_total, r.k_new, r.met) for r in plain.rounds
        ] == [(r.k_total, r.k_new, r.met) for r in queued.rounds]
        assert plain.universe == queued.universe
        assert (
            plain.target_table.signatures
            == queued.target_table.signatures
        )
        assert (
            plain.untargeted_table.signatures
            == queued.untargeted_table.signatures
        )


class TestTcpExecutorDifferential:
    """TCP-broker builds ≡ inline builds, bit for bit.

    The network twin of :class:`TestQueueExecutorDifferential`: every
    case submits its shards to a live in-process broker and lets real
    :class:`~repro.parallel.TcpWorker` drain loops (two of them,
    served push-style off the same broker) produce the results — the
    exact machinery behind ``repro broker`` + ``repro worker
    --broker``, minus the process boundary that the netqueue tests and
    the CI fleet-smoke job cover.  The local shard cache is disabled so
    each case measures a real distributed construction, not a replay.
    """

    @pytest.fixture()
    def broker(self):
        from repro.parallel import BackgroundBroker

        with BackgroundBroker() as running:
            yield running

    @staticmethod
    def _tcp_backend(base, broker):
        from repro.parallel import TcpExecutor

        return ParallelBackend(
            base=base,
            use_cache=False,
            executor=TcpExecutor(
                broker=broker.address, wait_timeout=300.0
            ),
        )

    @staticmethod
    def _workers(broker, tmp_path, count=2):
        import threading

        from repro.parallel import TcpWorker

        threads = []
        for index in range(count):
            worker = TcpWorker(
                broker=broker.address,
                worker_id=f"diff-{index}",
                cache_dir=str(tmp_path / f"cache-{index}"),
                use_cache=False,
            )
            threads.append(
                threading.Thread(
                    target=lambda w=worker: w.serve(idle_exit=5.0),
                    daemon=True,
                )
            )
        for thread in threads:
            thread.start()
        return threads

    def _assert_equivalent(self, circuit, base, broker, tmp_path):
        self._workers(broker, tmp_path)
        inline = FaultUniverse(circuit, backend=base)
        networked = FaultUniverse(
            circuit, backend=self._tcp_backend(base, broker)
        )
        for mine, theirs in (
            (networked.target_table, inline.target_table),
            (networked.untargeted_table, inline.untargeted_table),
        ):
            assert mine.faults == theirs.faults
            assert mine.signatures == theirs.signatures
            assert mine.universe == theirs.universe
        tcp_analysis = WorstCaseAnalysis(
            networked.target_table, networked.untargeted_table
        )
        inline_analysis = WorstCaseAnalysis(
            inline.target_table, inline.untargeted_table
        )
        assert tcp_analysis.records == inline_analysis.records
        assert tcp_analysis.guaranteed_n() == (
            inline_analysis.guaranteed_n()
        )

    def test_exhaustive_base(self, broker, tmp_path):
        circuit = random_circuit(51, num_inputs=5, num_gates=12)
        self._assert_equivalent(
            circuit, ExhaustiveBackend(), broker, tmp_path
        )

    def test_sampled_base(self, broker, tmp_path):
        circuit = random_circuit(52, num_inputs=7, num_gates=16)
        self._assert_equivalent(
            circuit, SampledBackend(24, seed=52), broker, tmp_path
        )

    def test_packed_base(self, broker, tmp_path):
        pytest.importorskip("numpy")
        from repro.faultsim.backends import PackedBackend

        circuit = random_circuit(53, num_inputs=6, num_gates=14)
        self._assert_equivalent(
            circuit, PackedBackend(samples=24, seed=9), broker, tmp_path
        )

    def test_serial_base(self, broker, tmp_path):
        circuit = random_circuit(54, num_inputs=5, num_gates=12)
        self._assert_equivalent(
            circuit, SerialBackend(), broker, tmp_path
        )

    @pytest.mark.parametrize("name", _suite_circuits()[:2])
    def test_suite_circuit(self, name, broker, tmp_path):
        from repro.bench_suite.registry import get_circuit

        self._assert_equivalent(
            get_circuit(name), ExhaustiveBackend(), broker, tmp_path
        )

    def test_adaptive_rounds_distribute(self, broker, tmp_path):
        """Per-round adaptive delta builds through the broker: the
        trajectory is bit-identical to the single-process run."""
        from repro.adaptive import AdaptiveSampler, StoppingRule
        from repro.parallel import TcpExecutor

        circuit = random_circuit(55, num_inputs=6, num_gates=14)
        rule = StoppingRule(
            target_halfwidth=0.2, initial_samples=8, max_samples=48,
            k_smallest=4,
        )

        def run(executor=None):
            return AdaptiveSampler(
                circuit, rule=rule, seed=5, representation="bigint",
                executor=executor, use_cache=False,
            ).run()

        self._workers(broker, tmp_path)
        networked = run(
            TcpExecutor(broker=broker.address, wait_timeout=300.0)
        )
        plain = run()
        assert [
            (r.k_total, r.k_new, r.met) for r in plain.rounds
        ] == [(r.k_total, r.k_new, r.met) for r in networked.rounds]
        assert plain.universe == networked.universe
        assert (
            plain.target_table.signatures
            == networked.target_table.signatures
        )
        assert (
            plain.untargeted_table.signatures
            == networked.untargeted_table.signatures
        )

    def test_stolen_build_is_bit_identical(self):
        """Equality must also hold when a shard is actually stolen:
        a straggler sits on its lease while a fast thief finishes."""
        import threading

        from repro.parallel import BackgroundBroker, TcpExecutor, TcpWorker

        circuit = random_circuit(56, num_inputs=5, num_gates=12)
        base = ExhaustiveBackend()
        inline = FaultUniverse(circuit, backend=base)
        with BackgroundBroker(steal_after=0.1) as running:
            slow = TcpWorker(
                broker=running.address, worker_id="a-slow",
                build_delay=2.0, use_cache=False,
            )
            fast = TcpWorker(
                broker=running.address, worker_id="b-fast",
                use_cache=False,
            )
            stats: dict = {}
            threads = [
                threading.Thread(
                    target=lambda: stats.update(
                        slow=slow.serve(idle_exit=6.0)
                    ),
                    daemon=True,
                ),
                threading.Thread(
                    target=lambda: stats.update(
                        fast=fast.serve(idle_exit=6.0)
                    ),
                    daemon=True,
                ),
            ]
            for thread in threads:
                thread.start()
            networked = FaultUniverse(
                circuit,
                backend=ParallelBackend(
                    base=base,
                    use_cache=False,
                    executor=TcpExecutor(
                        broker=running.address, wait_timeout=300.0
                    ),
                ),
            )
            # The tables are lazy; force both builds while the broker
            # (and the straggler) are still alive.
            assert (
                networked.target_table.signatures
                == inline.target_table.signatures
            )
            assert (
                networked.untargeted_table.signatures
                == inline.untargeted_table.signatures
            )
            counters = running.stats()["counters"]
        assert counters["steals"] >= 1


class TestAdaptiveDifferential:
    """Adaptive trajectories are seed-deterministic and jobs-invariant."""

    RULE_KWARGS = dict(
        target_halfwidth=0.2,
        initial_samples=8,
        max_samples=48,
        k_smallest=4,
    )

    def _run(self, circuit, seed, jobs=1, stratify=None,
             representation="bigint", **overrides):
        from repro.adaptive import AdaptiveSampler, StoppingRule

        kwargs = {**self.RULE_KWARGS, **overrides}
        return AdaptiveSampler(
            circuit,
            rule=StoppingRule(**kwargs),
            seed=seed,
            stratify=stratify,
            representation=representation,
            jobs=jobs,
            use_cache=False,
        ).run()

    @staticmethod
    def _assert_same_trajectory(a, b):
        assert [
            (r.k_total, r.k_new, r.met, r.allocation) for r in a.rounds
        ] == [(r.k_total, r.k_new, r.met, r.allocation) for r in b.rounds]
        assert a.universe == b.universe
        assert a.target_table.signatures == b.target_table.signatures
        assert (
            a.untargeted_table.signatures == b.untargeted_table.signatures
        )
        assert a.met == b.met and a.reason == b.reason
        worst_a = WorstCaseAnalysis(a.target_table, _dropped(a))
        worst_b = WorstCaseAnalysis(b.target_table, _dropped(b))
        assert worst_a.records == worst_b.records
        assert worst_a.guaranteed_n() == worst_b.guaranteed_n()

    @pytest.mark.parametrize("stratify", [None, "bridging"])
    @pytest.mark.parametrize("seed,p,gates", [(31, 6, 14), (32, 7, 16)])
    def test_jobs_invariant_random(self, seed, p, gates, stratify):
        circuit = random_circuit(seed, num_inputs=p, num_gates=gates)
        single = self._run(circuit, seed=seed, jobs=1, stratify=stratify)
        sharded = self._run(circuit, seed=seed, jobs=2, stratify=stratify)
        self._assert_same_trajectory(single, sharded)

    @pytest.mark.parametrize("name", _suite_circuits()[:2])
    def test_jobs_invariant_suite(self, name):
        from repro.bench_suite.registry import get_circuit

        circuit = get_circuit(name)
        single = self._run(circuit, seed=1, jobs=1, stratify="bridging")
        sharded = self._run(circuit, seed=1, jobs=2, stratify="bridging")
        self._assert_same_trajectory(single, sharded)

    @pytest.mark.parametrize("stratify", [None, "bridging"])
    def test_representation_invariant(self, stratify):
        pytest.importorskip("numpy")
        circuit = random_circuit(33, num_inputs=6, num_gates=14)
        bigint = self._run(
            circuit, seed=2, representation="bigint", stratify=stratify
        )
        packed = self._run(
            circuit, seed=2, representation="packed", stratify=stratify
        )
        self._assert_same_trajectory(bigint, packed)

    @pytest.mark.parametrize("stratify", [None, "bridging"])
    def test_full_budget_canonicalizes_to_exhaustive(self, stratify):
        # Degenerate full-budget run == the exact exhaustive analysis,
        # exactly like the full-coverage sampled draw.
        circuit = random_circuit(34, num_inputs=6, num_gates=14)
        report = self._run(
            circuit, seed=3, stratify=stratify,
            target_halfwidth=0.0001, max_samples=1 << 6,
        )
        assert report.universe.exhaustive
        exh_f, exh_g = _tables(circuit, ExhaustiveBackend())
        assert report.target_table.signatures == exh_f.signatures
        dropped = _dropped(report)
        assert dropped.faults == exh_g.faults
        assert dropped.signatures == exh_g.signatures
        exact = WorstCaseAnalysis(exh_f, exh_g)
        adaptive = WorstCaseAnalysis(report.target_table, dropped)
        assert adaptive.records == exact.records

    def test_seed_changes_trajectory(self):
        circuit = random_circuit(35, num_inputs=6, num_gates=14)
        a = self._run(circuit, seed=1)
        b = self._run(circuit, seed=2)
        assert a.universe != b.universe


def _dropped(report):
    """The paper's G from a report's raw bridging table."""
    table = report.untargeted_table
    kept = [
        (f, s) for f, s in zip(table.faults, table.signatures, strict=True) if s
    ]
    return type(table)(
        table.circuit,
        [f for f, _ in kept],
        [s for _, s in kept],
        table.universe,
    )


class TestSampledEstimates:
    """Sub-sample popcounts estimate the exact quantities."""

    SEEDS = range(40)
    K = 32  # half of the 2**6 universe

    @pytest.fixture(scope="class")
    def circuit(self):
        return random_circuit(11, num_inputs=6, num_gates=14)

    @pytest.fixture(scope="class")
    def exact_universe(self, circuit):
        return FaultUniverse(circuit)

    @pytest.fixture(scope="class")
    def sampled_tables(self, circuit):
        return [
            FaultUniverse(
                circuit, backend=SampledBackend(self.K, seed=s)
            ).target_table
            for s in self.SEEDS
        ]

    def test_count_estimates_unbiased(self, exact_universe, sampled_tables):
        exact = exact_universe.target_table.counts()
        num_faults = len(exact)
        sums = [0.0] * num_faults
        for table in sampled_tables:
            for i, est in enumerate(table.estimated_counts()):
                sums[i] += est
        # Calibrated: the worst per-fault |mean - exact| over these seeds
        # is ~0.85 on a 64-vector universe; 3.0 leaves generous slack.
        for i in range(num_faults):
            assert abs(sums[i] / len(sampled_tables) - exact[i]) < 3.0

    def test_estimates_bounded_by_universe(self, sampled_tables):
        for table in sampled_tables[:5]:
            space = table.universe.space
            for est in table.estimated_counts():
                assert 0.0 <= est <= space

    def test_nmin_estimates_near_exact(self, circuit, exact_universe):
        exact = WorstCaseAnalysis(
            exact_universe.target_table, exact_universe.untargeted_table
        )
        exact_n = exact.guaranteed_n()
        assert exact_n is not None
        estimates = []
        for s in range(30):
            u = FaultUniverse(circuit, backend=SampledBackend(self.K, seed=s))
            w = WorstCaseAnalysis(u.target_table, u.untargeted_table)
            est = w.estimated_guaranteed_n()
            if est is not None:
                estimates.append(est)
        assert len(estimates) >= 20
        # Calibrated: mean over these seeds is ~5.3 vs exact 5; the min
        # of noisy per-fault estimates biases slightly, hence the slack.
        assert abs(statistics.mean(estimates) - exact_n) < 2.5

    def test_sampled_tables_internally_consistent(self, sampled_tables):
        for table in sampled_tables[:5]:
            assert table.universe.size == self.K
            for sig in table.signatures:
                assert sig >> self.K == 0  # no bits beyond the universe


class TestSampledPipeline:
    """The whole analysis stack runs coherently on a sampled universe."""

    @pytest.fixture(scope="class")
    def universe(self):
        circuit = random_circuit(12, num_inputs=6, num_gates=14)
        return FaultUniverse(circuit, backend=SampledBackend(24, seed=5))

    def test_procedure1_average_case_escape(self, universe):
        family = build_random_ndetection_sets(
            universe.target_table, n_max=3, num_sets=10, seed=1
        )
        assert family.universe == universe.target_table.universe
        # test_vectors maps sample bits back to real drawn vectors.
        vectors = family.test_vectors(3, 0)
        assert set(vectors) <= set(universe.target_table.universe.vectors)
        worst = WorstCaseAnalysis(
            universe.target_table, universe.untargeted_table
        )
        average = AverageCaseAnalysis(family, universe.untargeted_table)
        assert all(0.0 <= p <= 1.0 for p in average.probabilities(3))
        reports = EscapeAnalysis(worst, average).curve()
        assert len(reports) == 3
        assert all(r.expected_escapes >= 0 for r in reports)

    def test_def2_counting_translates_vectors(self, universe):
        # Definition 2 simulates tij cubes of *decimal* vectors; on a
        # sampled universe the bit indices must be translated first.
        fam_a = build_random_ndetection_sets(
            universe.target_table, n_max=2, num_sets=4, seed=2,
            counting="def2",
        )
        fam_b = build_random_ndetection_sets(
            universe.target_table, n_max=2, num_sets=4, seed=2,
            counting="def2",
        )
        assert fam_a.snapshots == fam_b.snapshots  # deterministic
        k_universe = universe.target_table.universe.size
        for snap in fam_a.snapshots[-1]:
            assert snap >> k_universe == 0

    def test_worst_case_rejects_mixed_universes(self, universe):
        exhaustive = FaultUniverse(
            universe.circuit, backend=ExhaustiveBackend()
        )
        with pytest.raises(AnalysisError, match="universe"):
            WorstCaseAnalysis(
                exhaustive.target_table, universe.untargeted_table
            )

    def test_average_case_rejects_mixed_universes(self, universe):
        exhaustive = FaultUniverse(
            universe.circuit, backend=ExhaustiveBackend()
        )
        family = build_random_ndetection_sets(
            exhaustive.target_table, n_max=2, num_sets=4, seed=1
        )
        with pytest.raises(AnalysisError, match="universe"):
            AverageCaseAnalysis(family, universe.untargeted_table)
