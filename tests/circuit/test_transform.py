"""Cone extraction, partitioning, renaming: structure and semantics."""

from __future__ import annotations

import pytest

from repro.circuit.transform import (
    cone_support,
    extract_cone,
    output_partitions,
    rename_lines,
    strip_unused_lines,
)
from repro.circuit.validate import validate_circuit
from repro.errors import CircuitError
from repro.simulation.exhaustive import line_signatures


class TestExtractCone:
    def test_single_output_cone(self, example_circuit):
        sub = extract_cone(example_circuit, ["9"])
        names = {ln.name for ln in sub.lines}
        assert names == {"1", "2", "5", "9"}
        assert validate_circuit(sub) == []

    def test_cone_function_preserved(self, example_circuit):
        """The cone's output function equals the original restricted to
        the cone's support (checked on all support assignments)."""
        sub = extract_cone(example_circuit, ["10"])
        # sub inputs: 2, 3 (in original declaration order)
        in_names = [sub.lines[i].name for i in sub.inputs]
        assert in_names == ["2", "3"]
        sub_sigs = line_signatures(sub)
        out_sig = sub_sigs[sub.lid_of("10")]
        # Original: 10 = AND(2, 3); enumerate.
        for v in range(4):
            bit2 = (v >> 1) & 1
            bit3 = v & 1
            assert (out_sig >> v) & 1 == (bit2 & bit3)

    def test_multi_output_cone(self, example_circuit):
        sub = extract_cone(example_circuit, ["9", "10"])
        assert {sub.lines[o].name for o in sub.outputs} == {"9", "10"}
        assert not sub.has_line("11")
        assert not sub.has_line("4")

    def test_empty_outputs_rejected(self, example_circuit):
        with pytest.raises(CircuitError):
            extract_cone(example_circuit, [])


class TestConeSupport:
    def test_supports(self, example_circuit):
        c = example_circuit
        assert {c.lines[i].name for i in cone_support(c, "9")} == {"1", "2"}
        assert {c.lines[i].name for i in cone_support(c, "11")} == {"3", "4"}


class TestOutputPartitions:
    def test_partitions_cover_all_outputs(self, example_circuit):
        parts = output_partitions(example_circuit, max_inputs=2)
        covered = set()
        for p in parts:
            covered |= {p.lines[o].name for o in p.outputs}
        assert covered == {"9", "10", "11"}

    def test_respects_input_bound(self, example_circuit):
        for p in output_partitions(example_circuit, max_inputs=2):
            assert p.num_inputs <= 2

    def test_whole_circuit_fits_one_partition(self, example_circuit):
        parts = output_partitions(example_circuit, max_inputs=4)
        assert len(parts) == 1
        assert parts[0].num_inputs == 4

    def test_too_small_bound_rejected(self, example_circuit):
        with pytest.raises(CircuitError, match="cannot partition"):
            output_partitions(example_circuit, max_inputs=1)

    def test_bad_bound(self, example_circuit):
        with pytest.raises(CircuitError):
            output_partitions(example_circuit, max_inputs=0)


class TestRename:
    def test_numeric_names(self, c17_circuit):
        renamed = rename_lines(c17_circuit)
        assert [ln.name for ln in renamed.lines] == [
            str(i + 1) for i in range(len(c17_circuit.lines))
        ]
        assert validate_circuit(renamed) == []

    def test_function_preserved(self, c17_circuit):
        renamed = rename_lines(c17_circuit)
        orig = line_signatures(c17_circuit)
        new = line_signatures(renamed)
        for o_orig, o_new in zip(c17_circuit.outputs, renamed.outputs, strict=True):
            assert orig[o_orig] == new[o_new]


class TestStripUnused:
    def test_removes_dead_logic(self, example_circuit):
        from repro.circuit.builder import CircuitBuilder
        from repro.circuit.gate import GateType

        b = CircuitBuilder("c")
        b.input("a")
        b.input("b")
        b.gate("used", GateType.AND, ["a~0", "b"])
        b.gate("dead", GateType.NOT, ["a~1"])
        b.branch("a~0", of="a")
        b.branch("a~1", of="a")
        b.output("used")
        c = b.build(auto_branch=False)
        stripped = strip_unused_lines(c)
        assert not stripped.has_line("dead")
        assert stripped.num_inputs == 2  # inputs always kept

    def test_noop_on_clean_circuit(self, example_circuit):
        stripped = strip_unused_lines(example_circuit)
        assert len(stripped.lines) == len(example_circuit.lines)
