"""Additional gate-evaluation edge cases (wide gates, degenerate arities)."""

from __future__ import annotations

import pytest

from repro.circuit.gate import GateType, eval_dualrail, eval_scalar3, eval_signature
from repro.errors import CircuitError
from repro.logic.values import ONE, X, ZERO


class TestWideGates:
    @pytest.mark.parametrize("arity", [5, 8, 12])
    def test_wide_and(self, arity):
        mask = (1 << (1 << 4)) - 1  # 4-var space regardless of arity
        # All-ones inputs AND to all-ones.
        assert eval_signature(GateType.AND, [mask] * arity, mask) == mask
        # A single zero bit anywhere kills that bit.
        hole = mask & ~1
        assert eval_signature(
            GateType.AND, [mask] * (arity - 1) + [hole], mask
        ) == hole

    @pytest.mark.parametrize("arity", [3, 7])
    def test_wide_xor_parity(self, arity):
        mask = 0b11
        # XOR of `arity` copies of the same signature = 0 if even count.
        sig = 0b01
        out = eval_signature(GateType.XOR, [sig] * arity, mask)
        assert out == (sig if arity % 2 else 0)


class TestSingleInputLogicGates:
    """AND/OR/etc. with one input degenerate to a buffer (or inverter)."""

    @pytest.mark.parametrize(
        "gt,invert",
        [
            (GateType.AND, False),
            (GateType.OR, False),
            (GateType.XOR, False),
            (GateType.NAND, True),
            (GateType.NOR, True),
            (GateType.XNOR, True),
        ],
    )
    def test_signature_degenerate(self, gt, invert):
        mask = 0xFF
        sig = 0b10110100
        out = eval_signature(gt, [sig], mask)
        assert out == (~sig & mask if invert else sig)

    @pytest.mark.parametrize(
        "gt", [GateType.AND, GateType.OR, GateType.NAND, GateType.NOR]
    )
    def test_scalar3_degenerate(self, gt):
        for v in (ZERO, ONE, X):
            out = eval_scalar3(gt, [v])
            if v == X:
                assert out == X
            elif gt.is_inverting:
                assert out == (v ^ 1)
            else:
                assert out == v


class TestDualRailWide:
    def test_three_input_xor(self):
        # Lanes: (0,0,0), (1,1,0), (1,X,0), (1,1,1)
        ones = [0b1110, 0b1010, 0b1000]
        zeros = [0b0001, 0b0001, 0b0111]
        o, z = eval_dualrail(GateType.XOR, ones, zeros, 0b1111)
        # lane0: 0^0^0=0; lane1: 1^1^0=0; lane2: X; lane3: 1^1^1=1
        assert (o >> 0) & 1 == 0 and (z >> 0) & 1 == 1
        assert (o >> 1) & 1 == 0 and (z >> 1) & 1 == 1
        assert (o >> 2) & 1 == 0 and (z >> 2) & 1 == 0
        assert (o >> 3) & 1 == 1 and (z >> 3) & 1 == 0

    def test_empty_inputs_rejected(self):
        with pytest.raises(CircuitError):
            eval_dualrail(GateType.AND, [], [], 0b1)
