"""Validator coverage: clean circuits pass; corrupted ones are reported."""

from __future__ import annotations

import dataclasses

import pytest

from repro.circuit.builder import CircuitBuilder
from repro.circuit.gate import GateType
from repro.circuit.validate import validate_circuit
from repro.errors import CircuitError


def test_example_is_clean(example_circuit):
    assert validate_circuit(example_circuit) == []


def test_c17_is_clean(c17_circuit):
    assert validate_circuit(c17_circuit) == []


def test_majority_is_clean(majority_circuit):
    assert validate_circuit(majority_circuit) == []


def _corrupted_example(name, **changes):
    """A fresh example circuit with one line record mutated in place.

    The mutation happens after construction (validate_circuit only reads
    the line records), so structurally impossible circuits can be fed to
    the validator without tripping construction-time checks.
    """
    from repro.bench_suite.example import paper_example

    circuit = paper_example()
    lid = circuit.lid_of(name)
    circuit.lines[lid] = dataclasses.replace(circuit.lines[lid], **changes)
    return circuit


def test_dangling_line_reported():
    b = CircuitBuilder("c")
    b.input("a")
    b.input("b")
    b.gate("g", GateType.AND, ["a", "b"])
    b.gate("dead", GateType.NOT, ["g~x"])
    b.branch("g~x", of="g")
    b.branch("g~y", of="g")
    b.gate("h", GateType.NOT, ["g~y"])
    b.output("h")
    c = b.build()
    issues = validate_circuit(c)
    assert any("dangling" in i for i in issues)


def test_strict_raises_on_issue():
    b = CircuitBuilder("c")
    b.input("a")
    b.gate("g", GateType.NOT, ["a"])
    b.gate("dead", GateType.NOT, ["g~1"])
    b.branch("g~0", of="g")
    b.branch("g~1", of="g")
    b.gate("h", GateType.NOT, ["g~0"])
    b.output("h")
    c = b.build()
    with pytest.raises(CircuitError, match="failed validation"):
        validate_circuit(c, strict=True)


def test_edge_inconsistency_detected():
    # Cut line 9 out of input 1's fanout without touching 9's fanin.
    broken = _corrupted_example("1", fanout=())
    issues = validate_circuit(broken)
    assert any("missing from source fanout" in i for i in issues)


def test_branch_with_two_sinks_detected():
    broken = _corrupted_example("5", fanout=(8, 9))
    issues = validate_circuit(broken)
    assert any("sinks" in i for i in issues)


def test_gate_without_type_detected():
    broken = _corrupted_example("9", gate_type=None)
    issues = validate_circuit(broken)
    assert any("no gate type" in i for i in issues)


def test_input_with_fanin_detected():
    broken = _corrupted_example("4", fanin=(0,))
    issues = validate_circuit(broken)
    assert any("has fanin" in i for i in issues)
