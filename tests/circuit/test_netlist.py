"""Circuit structure queries: topo order, levels, cones, observability."""

from __future__ import annotations

import pytest

from repro.circuit.builder import CircuitBuilder
from repro.circuit.gate import GateType
from repro.errors import CircuitError


class TestLookup:
    def test_lid_of(self, example_circuit):
        assert example_circuit.lid_of("1") == 0
        assert example_circuit.lid_of("11") == 10

    def test_unknown_name(self, example_circuit):
        with pytest.raises(CircuitError, match="no line named"):
            example_circuit.lid_of("zzz")

    def test_line_by_name_and_lid(self, example_circuit):
        assert example_circuit.line("9") is example_circuit.line(8)

    def test_has_line(self, example_circuit):
        assert example_circuit.has_line("5")
        assert not example_circuit.has_line("99")

    def test_len(self, example_circuit):
        assert len(example_circuit) == 11


class TestTopology:
    def test_topo_order_respects_dependencies(self, example_circuit):
        pos = {lid: i for i, lid in enumerate(example_circuit.topo_order)}
        for line in example_circuit.lines:
            if not line.fanin:
                continue
            for src in line.fanin:
                if example_circuit.lines[src].fanin:
                    assert pos[src] < pos[line.lid]

    def test_levels(self, example_circuit):
        c = example_circuit
        assert c.level[c.lid_of("1")] == 0
        assert c.level[c.lid_of("5")] == 1
        assert c.level[c.lid_of("9")] == 2
        assert c.depth == 2

    def test_stats(self, example_circuit):
        s = example_circuit.stats()
        assert s == {
            "inputs": 4,
            "outputs": 3,
            "gates": 3,
            "branches": 4,
            "lines": 11,
            "depth": 2,
        }


class TestCones:
    def test_transitive_fanout(self, example_circuit):
        c = example_circuit
        fanout = {c.lines[x].name for x in c.transitive_fanout(c.lid_of("2"))}
        assert fanout == {"5", "6", "9", "10"}

    def test_transitive_fanin(self, example_circuit):
        c = example_circuit
        fanin = {c.lines[x].name for x in c.transitive_fanin(c.lid_of("10"))}
        assert fanin == {"6", "7", "2", "3"}

    def test_fanout_cone_order_is_topological(self, example_circuit):
        c = example_circuit
        cone = c.fanout_cone_order(c.lid_of("2"))
        names = [c.lines[x].name for x in cone]
        assert set(names) == {"5", "6", "9", "10"}
        assert names.index("5") < names.index("9")
        assert names.index("6") < names.index("10")

    def test_observing_outputs(self, example_circuit):
        c = example_circuit
        obs = [c.lines[o].name for o in c.observing_outputs(c.lid_of("2"))]
        assert obs == ["9", "10"]
        obs = [c.lines[o].name for o in c.observing_outputs(c.lid_of("9"))]
        assert obs == ["9"]


class TestGateQueries:
    def test_multi_input_gate_lines(self, example_circuit):
        names = [ln.name for ln in example_circuit.multi_input_gate_lines()]
        assert names == ["9", "10", "11"]

    def test_gate_lines(self, example_circuit):
        assert len(example_circuit.gate_lines()) == 3

    def test_not_gate_excluded_from_multi_input(self):
        b = CircuitBuilder("c")
        b.input("a")
        b.input("x")
        b.gate("n", GateType.NOT, ["a"])
        b.gate("g", GateType.AND, ["n", "x"])
        b.output("g")
        c = b.build()
        assert [ln.name for ln in c.multi_input_gate_lines()] == ["g"]

    def test_is_stem(self, example_circuit):
        assert example_circuit.line("2").is_stem
        assert not example_circuit.line("1").is_stem
        assert not example_circuit.line("5").is_stem
