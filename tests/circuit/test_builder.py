"""CircuitBuilder behaviour: declarations, normal form, auto-branching."""

from __future__ import annotations

import pytest

from repro.circuit.builder import CircuitBuilder
from repro.circuit.gate import GateType
from repro.circuit.netlist import LineKind
from repro.errors import CircuitCycleError, CircuitError


def test_simple_build(tiny_and):
    assert tiny_and.num_inputs == 2
    assert tiny_and.num_gates == 1
    assert tiny_and.line("out").gate_type is GateType.AND


class TestDeclarationErrors:
    def test_duplicate_name(self):
        b = CircuitBuilder("c")
        b.input("a")
        with pytest.raises(CircuitError, match="duplicate"):
            b.input("a")

    def test_empty_name(self):
        b = CircuitBuilder("c")
        with pytest.raises(CircuitError):
            b.input("")

    def test_empty_circuit_name(self):
        with pytest.raises(CircuitError):
            CircuitBuilder("")

    def test_undeclared_fanin(self):
        b = CircuitBuilder("c")
        b.input("a")
        b.gate("g", GateType.NOT, ["zzz"])
        b.output("g")
        with pytest.raises(CircuitError, match="undeclared"):
            b.build()

    def test_undeclared_output(self):
        b = CircuitBuilder("c")
        b.input("a")
        b.output("nope")
        with pytest.raises(CircuitError, match="not a declared line"):
            b.build()

    def test_no_inputs(self):
        b = CircuitBuilder("c")
        b.const("k", 1)
        b.output("k")
        with pytest.raises(CircuitError, match="no inputs"):
            b.build()

    def test_no_outputs(self):
        b = CircuitBuilder("c")
        b.input("a")
        with pytest.raises(CircuitError, match="no outputs"):
            b.build()

    def test_duplicate_output_mark(self):
        b = CircuitBuilder("c")
        b.input("a")
        b.output("a")
        with pytest.raises(CircuitError):
            b.output("a")

    def test_bad_const(self):
        b = CircuitBuilder("c")
        with pytest.raises(CircuitError):
            b.const("k", 2)

    def test_branch_of_branch(self):
        b = CircuitBuilder("c")
        b.input("a")
        b.branch("b1", of="a")
        b.branch("b2", of="b1")
        b.output("b2")
        with pytest.raises(CircuitError, match="branches of branches"):
            b.build()

    def test_arity_checked_at_declaration(self):
        b = CircuitBuilder("c")
        b.input("a")
        b.input("b")
        with pytest.raises(CircuitError):
            b.gate("g", GateType.NOT, ["a", "b"])


class TestAutoBranching:
    def _fanout_builder(self):
        b = CircuitBuilder("c")
        b.input("a")
        b.input("b")
        b.gate("g1", GateType.AND, ["a", "b"])
        b.gate("g2", GateType.OR, ["a", "b"])
        b.output("g1")
        b.output("g2")
        return b

    def test_auto_branch_inserts_branches(self):
        c = self._fanout_builder().build(auto_branch=True)
        branches = [ln for ln in c.lines if ln.kind is LineKind.BRANCH]
        assert len(branches) == 4  # a~0, a~1, b~0, b~1
        # Stems now feed only branches.
        for stem in ("a", "b"):
            sinks = [c.lines[s].kind for s in c.line(stem).fanout]
            assert all(k is LineKind.BRANCH for k in sinks)

    def test_no_auto_branch_rejects(self):
        with pytest.raises(CircuitError, match="without explicit branches"):
            self._fanout_builder().build(auto_branch=False)

    def test_explicit_branches_preserved(self, example_circuit):
        assert [ln.name for ln in example_circuit.lines if ln.kind is LineKind.BRANCH] == [
            "5", "6", "7", "8",
        ]

    def test_mixed_branch_and_direct_rejected(self):
        b = CircuitBuilder("c")
        b.input("a")
        b.input("x")
        b.branch("a1", of="a")
        b.gate("g1", GateType.NOT, ["a1"])
        b.gate("g2", GateType.AND, ["a", "x"])  # direct use alongside branch
        b.output("g1")
        b.output("g2")
        with pytest.raises(CircuitError, match="branches"):
            b.build()

    def test_single_fanout_needs_no_branch(self):
        b = CircuitBuilder("c")
        b.input("a")
        b.gate("g", GateType.NOT, ["a"])
        b.output("g")
        c = b.build(auto_branch=True)
        assert all(ln.kind is not LineKind.BRANCH for ln in c.lines)

    def test_output_plus_single_gate_sink_ok(self):
        """A PO that also feeds one gate stays branch-free."""
        b = CircuitBuilder("c")
        b.input("a")
        b.gate("g", GateType.NOT, ["a"])
        b.gate("h", GateType.NOT, ["g"])
        b.output("g")
        b.output("h")
        c = b.build(auto_branch=True)
        assert c.line("g").is_output
        assert len(c.line("g").fanout) == 1


class TestCycles:
    def test_cycle_detected(self):
        b = CircuitBuilder("c")
        b.input("a")
        b.gate("g1", GateType.AND, ["a", "g2"])
        b.gate("g2", GateType.NOT, ["g1"])
        b.output("g2")
        with pytest.raises(CircuitCycleError):
            b.build()

    def test_self_loop(self):
        b = CircuitBuilder("c")
        b.input("a")
        b.gate("g", GateType.AND, ["a", "g"])
        b.output("g")
        with pytest.raises(CircuitCycleError):
            b.build()


class TestForwardReferences:
    def test_gates_in_any_order(self):
        b = CircuitBuilder("c")
        b.input("a")
        b.gate("late", GateType.NOT, ["early"])
        b.gate("early", GateType.NOT, ["a"])
        b.output("late")
        c = b.build()
        # late depends on early: level(late) > level(early)
        assert c.level[c.lid_of("late")] > c.level[c.lid_of("early")]
