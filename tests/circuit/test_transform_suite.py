"""Transform semantics on real suite circuits (heavier integration).

Cone extraction must preserve per-output functions and fault behaviour
on the synthesized FSM netlists, not just the toy fixtures — branch
rebuilding across extraction is where subtle normal-form bugs would
hide.
"""

from __future__ import annotations

import pytest

from repro.bench_suite.registry import get_circuit
from repro.circuit.transform import cone_support, extract_cone, output_partitions
from repro.circuit.validate import validate_circuit
from repro.simulation.exhaustive import line_signatures
from repro.simulation.twoval import output_values


@pytest.mark.parametrize("name", ["lion", "bbtas", "mc"])
class TestConeExtractionOnSuite:
    def test_every_single_output_cone(self, name):
        circuit = get_circuit(name)
        full_sigs = line_signatures(circuit)
        for out_lid in circuit.outputs:
            out_name = circuit.lines[out_lid].name
            cone = extract_cone(circuit, [out_name])
            assert validate_circuit(cone) == []
            # Compare the cone function with the original on every
            # assignment of the cone's support.
            support = sorted(
                cone_support(circuit, out_name),
                key=circuit.inputs.index,
            )
            cone_in_names = [cone.lines[i].name for i in cone.inputs]
            assert cone_in_names == [
                circuit.lines[i].name for i in support
            ]
            p_full = circuit.num_inputs
            for v_cone in range(1 << cone.num_inputs):
                # Map the cone vector back onto a full-circuit vector
                # (free inputs at 0).
                v_full = 0
                for bit_pos, lid in enumerate(support):
                    j = circuit.inputs.index(lid)
                    bit = (v_cone >> (cone.num_inputs - 1 - bit_pos)) & 1
                    v_full |= bit << (p_full - 1 - j)
                expected = (full_sigs[out_lid] >> v_full) & 1
                got = output_values(cone, v_cone)[0]
                assert got == expected, (name, out_name, v_cone)

    def test_partitions_preserve_outputs(self, name):
        circuit = get_circuit(name)
        parts = output_partitions(circuit, max_inputs=circuit.num_inputs)
        covered = set()
        for part in parts:
            assert validate_circuit(part) == []
            covered |= {part.lines[o].name for o in part.outputs}
        assert covered == {
            circuit.lines[o].name for o in circuit.outputs
        }
