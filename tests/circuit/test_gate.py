"""Gate-type evaluation in all three value domains, cross-checked."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.gate import (
    GateType,
    eval_dualrail,
    eval_scalar3,
    eval_signature,
    gate_type_from_name,
)
from repro.errors import CircuitError
from repro.logic.values import ONE, X, ZERO

LOGIC_GATES = [
    GateType.AND,
    GateType.OR,
    GateType.NAND,
    GateType.NOR,
    GateType.XOR,
    GateType.XNOR,
]

REFERENCE = {
    GateType.AND: lambda vals: all(vals),
    GateType.OR: lambda vals: any(vals),
    GateType.NAND: lambda vals: not all(vals),
    GateType.NOR: lambda vals: not any(vals),
    GateType.XOR: lambda vals: sum(vals) % 2 == 1,
    GateType.XNOR: lambda vals: sum(vals) % 2 == 0,
}


class TestSignatureEval:
    @pytest.mark.parametrize("gt", LOGIC_GATES)
    @pytest.mark.parametrize("arity", [2, 3, 4])
    def test_matches_reference(self, gt, arity):
        # Signatures over `arity` free variables = full truth table.
        mask = (1 << (1 << arity)) - 1
        inputs = []
        for j in range(arity):
            sig = 0
            for v in range(1 << arity):
                if (v >> (arity - 1 - j)) & 1:
                    sig |= 1 << v
            inputs.append(sig)
        out = eval_signature(gt, inputs, mask)
        for v in range(1 << arity):
            bits = [(v >> (arity - 1 - j)) & 1 for j in range(arity)]
            assert (out >> v) & 1 == int(REFERENCE[gt](bits))

    def test_not_buf(self):
        mask = 0b11
        assert eval_signature(GateType.NOT, [0b01], mask) == 0b10
        assert eval_signature(GateType.BUF, [0b01], mask) == 0b01

    def test_consts(self):
        mask = 0xFF
        assert eval_signature(GateType.CONST0, [], mask) == 0
        assert eval_signature(GateType.CONST1, [], mask) == mask

    def test_empty_inputs_rejected(self):
        with pytest.raises(CircuitError):
            eval_signature(GateType.AND, [], 0xF)


class TestScalar3Consistency:
    @pytest.mark.parametrize("gt", LOGIC_GATES)
    def test_definite_matches_boolean(self, gt):
        for a in (0, 1):
            for b in (0, 1):
                assert eval_scalar3(gt, [a, b]) == int(REFERENCE[gt]([a, b]))

    @pytest.mark.parametrize("gt", LOGIC_GATES)
    def test_x_soundness(self, gt):
        """If the 3-valued result is definite, every completion agrees."""
        for a in (ZERO, ONE, X):
            for b in (ZERO, ONE, X):
                out = eval_scalar3(gt, [a, b])
                if out == X:
                    continue
                for ca in ((a,) if a != X else (0, 1)):
                    for cb in ((b,) if b != X else (0, 1)):
                        assert int(REFERENCE[gt]([ca, cb])) == out


class TestDualRailConsistency:
    @pytest.mark.parametrize("gt", LOGIC_GATES + [GateType.NOT, GateType.BUF])
    def test_matches_scalar(self, gt):
        arity = 1 if gt in (GateType.NOT, GateType.BUF) else 2
        values = [(ZERO,), (ONE,), (X,)]
        combos = []
        if arity == 1:
            combos = [(a,) for (a,) in values]
        else:
            combos = [(a, b) for (a,) in values for (b,) in values]
        lanes = len(combos)
        lane_mask = (1 << lanes) - 1
        ones = [0] * arity
        zeros = [0] * arity
        for lane, combo in enumerate(combos):
            for i, v in enumerate(combo):
                if v == ONE:
                    ones[i] |= 1 << lane
                elif v == ZERO:
                    zeros[i] |= 1 << lane
        o, z = eval_dualrail(gt, ones, zeros, lane_mask)
        for lane, combo in enumerate(combos):
            expected = eval_scalar3(gt, list(combo))
            got_one = (o >> lane) & 1
            got_zero = (z >> lane) & 1
            assert got_one + got_zero <= 1
            if expected == ONE:
                assert got_one == 1
            elif expected == ZERO:
                assert got_zero == 1
            else:
                assert got_one == 0 and got_zero == 0

    def test_consts(self):
        o, z = eval_dualrail(GateType.CONST1, [], [], 0b111)
        assert (o, z) == (0b111, 0)


class TestGateTypeMeta:
    def test_controlling_values(self):
        assert GateType.AND.controlling_value == 0
        assert GateType.NAND.controlling_value == 0
        assert GateType.OR.controlling_value == 1
        assert GateType.NOR.controlling_value == 1
        assert GateType.XOR.controlling_value is None

    def test_controlled_outputs(self):
        assert GateType.AND.controlled_output == 0
        assert GateType.NAND.controlled_output == 1
        assert GateType.OR.controlled_output == 1
        assert GateType.NOR.controlled_output == 0

    def test_arity_checks(self):
        with pytest.raises(CircuitError):
            GateType.NOT.check_arity(2)
        with pytest.raises(CircuitError):
            GateType.CONST0.check_arity(1)
        GateType.AND.check_arity(5)  # no limit upward

    def test_name_parsing(self):
        assert gate_type_from_name("nand") is GateType.NAND
        assert gate_type_from_name("NAND") is GateType.NAND
        assert gate_type_from_name("INV") is GateType.NOT
        assert gate_type_from_name("BUFF") is GateType.BUF
        with pytest.raises(CircuitError):
            gate_type_from_name("mux")


@given(
    st.lists(st.integers(min_value=0, max_value=0xFFFF), min_size=2, max_size=4)
)
@settings(max_examples=100)
def test_de_morgan_on_signatures(sigs):
    mask = 0xFFFF
    nand = eval_signature(GateType.NAND, sigs, mask)
    or_of_nots = eval_signature(
        GateType.OR, [~s & mask for s in sigs], mask
    )
    assert nand == or_of_nots
