"""RPL006 flag fixture: exact float equality in a stopping rule."""


def round_converged(half_width: float, confidence: float) -> bool:
    if half_width == 0.0:
        return True
    return confidence != 0.95
