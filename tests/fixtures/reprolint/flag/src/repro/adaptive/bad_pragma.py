"""RPL000 fixture: a suppression with no justification suppresses nothing."""


def sentinel(width: float) -> bool:
    return width == 99.5  # reprolint: ignore[RPL006]
