"""RPL002 flag fixture: hash-ordered iteration in an order-sensitive module."""


def plan_shards(lookup: dict) -> list:
    outstanding = set(lookup)
    picked = []
    for key in outstanding:
        picked.append(lookup[key])
    ready = {k for k in lookup if lookup[k] is not None}
    labels = [str(k) for k in ready]
    ordered = list(outstanding | ready)
    return picked + labels + ordered
