"""RPL004 flag fixture: probe-then-act in a TCP worker's shard cache.

A stolen shard can complete on two workers sharing a cache directory;
probing before reading or installing an entry races the other
completion (and the submitter replaying the same key).
"""


class WorkerCache:
    def __init__(self, root, writer):
        self.root = root
        self._write = writer

    def lookup(self, key: str):
        path = self.root / f"{key}.sig"
        if path.exists():
            return path.read_bytes()
        return None

    def install(self, key: str, payload: bytes) -> bool:
        path = self.root / f"{key}.sig"
        if path.exists():
            return False
        self._write(path, payload)
        return True
