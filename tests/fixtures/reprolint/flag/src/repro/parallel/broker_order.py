"""RPL002 flag fixture: hash-ordered dispatch in a broker pump.

The TCP broker's dispatch and steal decisions must not depend on
``PYTHONHASHSEED``: which idle worker is served first and which
in-flight shard is duplicated decide who builds what, and the stats
document is byte-diffed by the CLI tests.  Iterating the raw worker
and lease dicts makes all three hash-ordered.
"""


def idle_workers(workers):
    idle = {w for w in workers if workers[w] is None}
    return [w for w in idle]


def next_assignments(pending, workers):
    plan = []
    for worker_id in workers:
        if workers[worker_id] is None and pending:
            plan.append((worker_id, pending[0]))
    return plan


def steal_candidate(building):
    stale = set(building)
    for key in stale:
        return key
    return None
