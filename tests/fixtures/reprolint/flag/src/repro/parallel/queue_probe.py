"""RPL004 flag fixture: the pre-fix ``WorkQueue.enqueue`` probe windows.

Both hazards that used to live in ``repro.parallel.workqueue``: a stale
failure marker probed then unlinked (a racing worker can fail the key in
between, and the fresh marker is destroyed), and a pending-key probe
followed by a write to the probed path (a racing submitter clobbers a
requeued payload, resetting its ``attempts`` budget).
"""


class WorkQueue:
    def __init__(self, tasks_dir, claims_dir, failed_dir, writer):
        self.tasks_dir = tasks_dir
        self.claims_dir = claims_dir
        self.failed_dir = failed_dir
        self._write = writer

    def enqueue(self, task, key: str) -> bool:
        failed = self.failed_dir / f"{key}.err"
        if failed.exists():
            try:
                failed.unlink()
            except OSError:
                pass
        if (self.tasks_dir / f"{key}.task").exists() or (
            self.claims_dir / f"{key}.task"
        ).exists():
            return False
        self._write(
            self.tasks_dir / f"{key}.task",
            {"key": key, "task": task, "attempts": 0},
        )
        return True
