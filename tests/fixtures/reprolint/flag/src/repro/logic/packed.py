"""RPL005 flag fixture: signed/float contamination of uint64 word lanes."""

import numpy as _np


def lane_hazards(words, counts):
    rate = counts / 64
    scaled = words ** 2
    signed = words.astype(_np.int64)
    view = words.view("int64")
    neg = -_np.uint64(1)
    mixed = _np.uint64(3) + 1
    return rate, scaled, signed, view, neg, mixed
