"""RPL001 flag fixture: unseeded RNG construction outside tests."""

import random

import numpy as np


def fresh_streams():
    rng = random.Random()
    gen = np.random.default_rng()
    return rng, gen
