"""RPL003 flag fixture: the pre-PR-6 ``VectorUniverse`` pickle bug shape.

A lazily-built ``init=False`` cache with no ``__getstate__`` rides into
every executor pickle — exactly the dataclass shape that shipped the
stale ``_bit_index`` across the pool boundary before PR 6 fixed it.
"""

from dataclasses import dataclass, field


@dataclass(frozen=True)
class VectorUniverse:
    num_inputs: int
    vectors: tuple = ()
    _bit_index: dict = field(
        init=False, default=None, repr=False, compare=False
    )

    def bit_of(self, vector: int) -> int:
        cache = object.__getattribute__(self, "_bit_index")
        if cache is None:
            cache = {v: i for i, v in enumerate(self.vectors)}
            object.__setattr__(self, "_bit_index", cache)
        return cache[vector]
