"""RPL007 flag fixture: direct clock reads in observability code."""

import time
from time import monotonic
from time import perf_counter as pc


def span_duration(started: float) -> float:
    return time.monotonic() - started


def stamp_record() -> float:
    return time.time()


def measure() -> tuple[float, float]:
    return monotonic(), pc()
