"""RPL002 flag fixture: hash-ordered iteration in service reporting.

The ``/stats`` document and in-flight key listings are diffed
byte-for-byte by the service's identity tests; iterating raw sets makes
both depend on ``PYTHONHASHSEED``.
"""


def render_in_flight(keys):
    pending = set(keys)
    lines = []
    for key in pending:
        lines.append(f"in-flight: {key}")
    return lines


def snapshot(keys):
    live = {k for k in keys if k is not None}
    return list(live)


def merged_labels(ours, theirs):
    merged = set(ours) | set(theirs)
    return [str(k) for k in merged]
