"""RPL001 flag fixture: OS-entropy RNG in service retry/backoff code.

A service that jitters its retry delays (or samples probe circuits)
from an unseeded stream gives unreproducible request traces — two
replays of the same request log diverge.
"""

import random

import numpy as np


def backoff_delays(attempts: int) -> list[float]:
    rng = random.Random()
    gen = np.random.default_rng()
    return [rng.random() + float(gen.random()) for _ in range(attempts)]
