"""RPL004 flag fixture: probe-then-act on service spill files.

The service shares its cache/queue directories with ``repro worker``
processes; an ``exists()`` probe before reading or replacing a spill
file races a worker completing (or garbage-collecting) the same entry.
"""


class SpillStore:
    def __init__(self, root, writer):
        self.root = root
        self._write = writer

    def load(self, key: str):
        path = self.root / f"{key}.table"
        if path.exists():
            return path.read_bytes()
        return None

    def store(self, key: str, payload: bytes) -> bool:
        path = self.root / f"{key}.table"
        if path.exists():
            return False
        self._write(path, payload)
        return True
