"""RPL004 ok fixture: EAFP reads and atomic create for shard entries.

Double completion of a stolen shard is a cache hit, never a clobber:
reads are EAFP and installs go through a complete temp file linked
into place (atomic create-if-absent).
"""

import os


class WorkerCache:
    def __init__(self, root, writer):
        self.root = root
        self._write = writer

    def lookup(self, key: str):
        try:
            return (self.root / f"{key}.sig").read_bytes()
        except FileNotFoundError:
            return None

    def install(self, key: str, payload: bytes) -> bool:
        target = self.root / f"{key}.sig"
        tmp = target.with_name(f".{target.name}.{os.getpid()}.tmp")
        self._write(tmp, payload)
        try:
            os.link(tmp, target)
        except FileExistsError:
            return False
        finally:
            os.unlink(tmp)
        return True
