"""RPL004 ok fixture: race-free transitions (EAFP + atomic create).

The stale failure marker is removed EAFP-style, and the pending file is
installed with ``os.link`` from a complete temp file — an atomic
create-if-absent that never clobbers an existing payload.  The leased
probe is advisory: nothing later acts on the probed path.
"""

import os


class WorkQueue:
    def __init__(self, tasks_dir, claims_dir, failed_dir, writer):
        self.tasks_dir = tasks_dir
        self.claims_dir = claims_dir
        self.failed_dir = failed_dir
        self._write = writer

    def enqueue(self, task, key: str) -> bool:
        try:
            (self.failed_dir / f"{key}.err").unlink()
        except OSError:
            pass
        if (self.claims_dir / f"{key}.task").exists():
            return False
        target = self.tasks_dir / f"{key}.task"
        tmp = target.with_name(f".{target.name}.{os.getpid()}.tmp")
        self._write(tmp, {"key": key, "task": task, "attempts": 0})
        try:
            os.link(tmp, target)
        except FileExistsError:
            return False
        finally:
            os.unlink(tmp)
        return True
