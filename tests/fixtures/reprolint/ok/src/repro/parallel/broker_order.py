"""RPL002 ok fixture: broker dispatch iterates sorted views.

Sorted worker ids and lease keys pin who is served first and which
shard is stolen, independent of ``PYTHONHASHSEED``.
"""


def idle_workers(workers):
    idle = {w for w in workers if workers[w] is None}
    return [w for w in sorted(idle)]


def next_assignments(pending, workers):
    plan = []
    for worker_id in sorted(workers):
        if workers[worker_id] is None and pending:
            plan.append((worker_id, pending[0]))
    return plan


def steal_candidate(building):
    stale = set(building)
    for key in sorted(stale):
        return key
    return None
