"""RPL002 ok fixture: every set is sorted before iteration order can escape."""


def plan_shards(lookup: dict) -> list:
    outstanding = set(lookup)
    picked = []
    for key in sorted(outstanding):
        picked.append(lookup[key])
    ready = {k for k in lookup if lookup[k] is not None}
    labels = [str(k) for k in sorted(ready)]
    ordered = sorted(outstanding | ready)
    return picked + labels + ordered
