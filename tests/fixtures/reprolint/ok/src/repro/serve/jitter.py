"""RPL001 ok fixture: service jitter drawn from explicitly seeded streams."""

import random

import numpy as np


def backoff_delays(attempts: int, seed: int) -> list[float]:
    rng = random.Random(seed)
    gen = np.random.default_rng(seed)
    return [rng.random() + float(gen.random()) for _ in range(attempts)]
