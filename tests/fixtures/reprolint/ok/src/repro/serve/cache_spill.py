"""RPL004 ok fixture: EAFP reads and atomic create for spill files."""

import os


class SpillStore:
    def __init__(self, root, writer):
        self.root = root
        self._write = writer

    def load(self, key: str):
        try:
            return (self.root / f"{key}.table").read_bytes()
        except FileNotFoundError:
            return None

    def store(self, key: str, payload: bytes) -> bool:
        target = self.root / f"{key}.table"
        tmp = target.with_name(f".{target.name}.{os.getpid()}.tmp")
        self._write(tmp, payload)
        try:
            os.link(tmp, target)
        except FileExistsError:
            return False
        finally:
            os.unlink(tmp)
        return True
