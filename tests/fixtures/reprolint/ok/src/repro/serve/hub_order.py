"""RPL002 ok fixture: service reporting iterates sorted views."""


def render_in_flight(keys):
    pending = set(keys)
    lines = []
    for key in sorted(pending, key=repr):
        lines.append(f"in-flight: {key}")
    return lines


def snapshot(keys):
    live = {k for k in keys if k is not None}
    return sorted(live, key=repr)


def merged_labels(ours, theirs):
    merged = set(ours) | set(theirs)
    return [str(k) for k in sorted(merged, key=repr)]
