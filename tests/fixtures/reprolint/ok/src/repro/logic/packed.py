"""RPL005 ok fixture: lanes stay uint64; only accumulators go signed."""

import numpy as _np


def lane_ops(words, mask):
    counts = (words & mask).sum(axis=1, dtype=_np.int64)
    rate_num = counts * 100 // 64
    half = words >> _np.uint64(1)
    complement = words ^ _np.uint64(0xFFFFFFFFFFFFFFFF)
    order = _np.argsort(counts).astype(_np.intp)
    mixed = _np.uint64(3) + _np.uint64(1)
    return counts, rate_num, half, complement, order, mixed
