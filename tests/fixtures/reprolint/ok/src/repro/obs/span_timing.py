"""RPL007 ok fixture: every read goes through the injected clock."""


class Clock:
    def monotonic(self) -> float:
        raise NotImplementedError

    def wall(self) -> float:
        raise NotImplementedError


def span_duration(clock: Clock, started: float) -> float:
    return clock.monotonic() - started


def stamp_record(clock: Clock) -> float:
    return clock.wall()
