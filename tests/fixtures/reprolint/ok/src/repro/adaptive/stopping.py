"""RPL006 ok fixture: tolerance comparison and exact-integer restatement."""

_TOL = 1e-12


def round_converged(
    half_width: float, confidence: float, hits: int
) -> bool:
    if abs(half_width) < _TOL:
        return True
    if hits == 0:
        return False
    return abs(confidence - 0.95) > _TOL
