"""Justified-suppression fixture: the pragma silences the finding."""


def sentinel(width: float) -> bool:
    # The 99.5 sentinel is assigned verbatim, never computed, so the
    # comparison is exact by construction.
    return width == 99.5  # reprolint: ignore[RPL006] -- sentinel assigned verbatim, exact compare
