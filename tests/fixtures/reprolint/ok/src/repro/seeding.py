"""RPL001 ok fixture: every stream constructed from an explicit seed."""

import random

import numpy as np


def fresh_streams(seed: int):
    rng = random.Random(seed)
    gen = np.random.default_rng(seed ^ 0x5EED)
    return rng, gen
