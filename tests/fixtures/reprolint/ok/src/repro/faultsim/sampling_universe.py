"""RPL003 ok fixture: the cache is dropped from the pickle payload."""

from dataclasses import dataclass, field, fields


@dataclass(frozen=True)
class VectorUniverse:
    num_inputs: int
    vectors: tuple = ()
    _bit_index: dict = field(
        init=False, default=None, repr=False, compare=False
    )

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        for f in fields(self):
            if not f.init and f.default is None:
                state[f.name] = None
        return state

    def bit_of(self, vector: int) -> int:
        cache = object.__getattribute__(self, "_bit_index")
        if cache is None:
            cache = {v: i for i, v in enumerate(self.vectors)}
            object.__setattr__(self, "_bit_index", cache)
        return cache[vector]
