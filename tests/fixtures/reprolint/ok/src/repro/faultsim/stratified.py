"""RPL003 ok fixture: ``__getstate__`` inherited from a project base class.

The subclass declares its own ``init=False`` cache but relies on the
generic cache-dropping ``__getstate__`` defined on ``VectorUniverse``
(in a *different* file) — the cross-file case the ``ProjectIndex``
resolves.
"""

from dataclasses import dataclass, field

from repro.faultsim.sampling_universe import VectorUniverse


@dataclass(frozen=True)
class StratifiedVectorUniverse(VectorUniverse):
    strata: tuple = ()
    _stratum_cache: dict = field(
        init=False, default=None, repr=False, compare=False
    )
