"""RPL001 tests-exemption fixture: fuzzing entropy is fine under tests/."""

import random


def fuzz_source():
    return random.Random()
