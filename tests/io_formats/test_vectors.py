"""Test-vector file round-trips and error handling."""

from __future__ import annotations

import pytest

from repro.errors import ParseError
from repro.io_formats.vectors import parse_vectors, write_vectors


class TestWrite:
    def test_basic(self):
        text = write_vectors([5, 0, 15], 4)
        assert text == "0101\n0000\n1111\n"

    def test_comment(self):
        text = write_vectors([1], 2, comment="two lines\nof comment")
        assert text.startswith("# two lines\n# of comment\n")

    def test_range_check(self):
        with pytest.raises(ParseError):
            write_vectors([16], 4)


class TestParse:
    def test_round_trip(self):
        vectors = [0, 7, 12, 3]
        assert parse_vectors(write_vectors(vectors, 4)) == vectors

    def test_width_inference(self):
        assert parse_vectors("101\n010\n") == [5, 2]

    def test_explicit_width_enforced(self):
        with pytest.raises(ParseError, match="width"):
            parse_vectors("101\n", num_inputs=4)

    def test_inconsistent_rows(self):
        with pytest.raises(ParseError, match="width"):
            parse_vectors("101\n01\n")

    def test_comments_and_blanks_skipped(self):
        assert parse_vectors("# c\n\n11  # inline\n") == [3]

    def test_bad_characters(self):
        with pytest.raises(ParseError, match="bad vector"):
            parse_vectors("10x\n")

    def test_empty_file(self):
        assert parse_vectors("# nothing\n") == []


class TestCliIntegration:
    def test_gen_tests_output_parses(self, tmp_path):
        from repro.cli import main

        out = tmp_path / "tests.vec"
        assert main(
            ["gen-tests", "paper_example", "--n", "2", "--out", str(out)]
        ) == 0
        vectors = parse_vectors(out.read_text(), num_inputs=4)
        assert len(vectors) == len(set(vectors)) > 0

    def test_generated_set_detects_all_targets(self, tmp_path, example_universe):
        from repro.cli import main

        out = tmp_path / "tests.vec"
        main(["gen-tests", "paper_example", "--n", "1", "--out", str(out)])
        vectors = parse_vectors(out.read_text(), num_inputs=4)
        sig = sum(1 << v for v in vectors)
        for f_sig in example_universe.target_table.signatures:
            if f_sig:
                assert f_sig & sig
