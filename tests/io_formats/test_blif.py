"""BLIF subset parser/writer tests."""

from __future__ import annotations

import pytest

from repro.errors import ParseError
from repro.io_formats.blif import parse_blif, write_blif
from repro.simulation.exhaustive import line_signatures
from repro.simulation.twoval import output_values

MAJORITY_BLIF = """\
.model maj
.inputs a b c
.outputs y
.names a b c y
11- 1
1-1 1
-11 1
.end
"""


class TestParse:
    def test_onset_cover(self):
        c = parse_blif(MAJORITY_BLIF)
        for v in range(8):
            bits = [(v >> 2) & 1, (v >> 1) & 1, v & 1]
            assert output_values(c, v) == (int(sum(bits) >= 2),)

    def test_offset_cover(self):
        text = ".model f\n.inputs a b\n.outputs y\n.names a b y\n11 0\n.end\n"
        c = parse_blif(text)
        # y = NOT(a AND b)
        assert [output_values(c, v)[0] for v in range(4)] == [1, 1, 1, 0]

    def test_constants(self):
        text = (
            ".model k\n.inputs a\n.outputs y z\n"
            ".names y\n1\n.names z\n.end\n"
        )
        c = parse_blif(text)
        for v in range(2):
            assert output_values(c, v) == (1, 0)

    def test_buffer_row(self):
        text = ".model b\n.inputs a\n.outputs y\n.names a y\n1 1\n.end\n"
        c = parse_blif(text)
        assert [output_values(c, v)[0] for v in range(2)] == [0, 1]

    def test_continuation_lines(self):
        text = (
            ".model c\n.inputs a b\n.outputs y\n"
            ".names a \\\nb y\n11 1\n.end\n"
        )
        c = parse_blif(text)
        assert output_values(c, 3) == (1,)

    def test_model_name_used(self):
        assert parse_blif(MAJORITY_BLIF).name == "maj"

    def test_mixed_polarity_rejected(self):
        text = ".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n0 0\n.end\n"
        with pytest.raises(ParseError, match="mixed"):
            parse_blif(text)

    def test_latch_rejected(self):
        text = ".model l\n.inputs a\n.outputs y\n.latch a y re clk 0\n.end\n"
        with pytest.raises(ParseError, match="latch"):
            parse_blif(text)

    def test_row_outside_names(self):
        with pytest.raises(ParseError, match="outside"):
            parse_blif(".model x\n.inputs a\n.outputs y\n11 1\n.end\n")

    def test_bad_cube_width(self):
        text = ".model w\n.inputs a b\n.outputs y\n.names a b y\n111 1\n.end\n"
        with pytest.raises(ParseError, match="width"):
            parse_blif(text)

    def test_missing_inputs(self):
        with pytest.raises(ParseError, match="missing .inputs"):
            parse_blif(".model m\n.outputs y\n.names y\n1\n.end\n")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "fixture",
        ["example_circuit", "c17_circuit", "majority_circuit", "xor_tree_circuit"],
    )
    def test_function_preserved(self, fixture, request):
        original = request.getfixturevalue(fixture)
        text = write_blif(original)
        parsed = parse_blif(text)
        orig_sigs = line_signatures(original)
        new_sigs = line_signatures(parsed)
        for o_orig, o_new in zip(original.outputs, parsed.outputs, strict=True):
            assert orig_sigs[o_orig] == new_sigs[o_new]
