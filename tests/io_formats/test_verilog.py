"""Structural Verilog writer/reader round-trips."""

from __future__ import annotations

import pytest

from repro.errors import ParseError
from repro.io_formats.verilog import parse_verilog, write_verilog
from repro.simulation.exhaustive import line_signatures

SIMPLE = """\
// hand-written module
module half_adder (a, b, s, c);
  input a, b;
  output s, c;
  xor x0 (s, a, b);
  and a0 (c, a, b);
endmodule
"""


class TestParse:
    def test_half_adder(self):
        c = parse_verilog(SIMPLE)
        assert c.name == "half_adder"
        assert c.num_inputs == 2
        assert c.num_outputs == 2
        sigs = line_signatures(c)
        assert sigs[c.lid_of("s")] == 0b0110
        assert sigs[c.lid_of("c")] == 0b1000

    def test_comments_stripped(self):
        text = SIMPLE.replace(
            "xor x0 (s, a, b);",
            "/* multi\nline */ xor x0 (s, a, b); // trailing",
        )
        c = parse_verilog(text)
        assert c.num_gates == 2

    def test_assign_constants(self):
        text = (
            "module k (a, y, z);\n"
            "  input a;\n  output y, z;\n"
            "  wire unused;\n"
            "  assign y = 1'b1;\n"
            "  buf b0 (z, a);\n"
            "endmodule\n"
        )
        c = parse_verilog(text)
        sigs = line_signatures(c)
        assert sigs[c.lid_of("y")] == 0b11

    def test_no_module(self):
        with pytest.raises(ParseError, match="module"):
            parse_verilog("wire x;")

    def test_no_inputs(self):
        with pytest.raises(ParseError, match="no inputs"):
            parse_verilog("module m (y);\noutput y;\nassign y = 1'b0;\nendmodule")

    def test_short_instance(self):
        with pytest.raises(ParseError, match="terminals"):
            parse_verilog(
                "module m (a, y);\ninput a;\noutput y;\nand g (y);\nendmodule"
            )


class TestRoundTrip:
    @pytest.mark.parametrize(
        "fixture",
        ["example_circuit", "c17_circuit", "majority_circuit",
         "xor_tree_circuit"],
    )
    def test_function_preserved(self, fixture, request):
        original = request.getfixturevalue(fixture)
        text = write_verilog(original)
        parsed = parse_verilog(text)
        orig_sigs = line_signatures(original)
        new_sigs = line_signatures(parsed)
        for o_orig, o_new in zip(original.outputs, parsed.outputs, strict=True):
            assert orig_sigs[o_orig] == new_sigs[o_new]

    def test_numeric_names_escaped(self, example_circuit):
        text = write_verilog(example_circuit)
        # Line "9" is not a legal plain identifier: must be escaped.
        assert "\\9 " in text

    def test_suite_circuit_round_trip(self):
        from repro.bench_suite.registry import get_circuit

        original = get_circuit("lion")
        parsed = parse_verilog(write_verilog(original))
        orig_sigs = line_signatures(original)
        new_sigs = line_signatures(parsed)
        for o_orig, o_new in zip(original.outputs, parsed.outputs, strict=True):
            assert orig_sigs[o_orig] == new_sigs[o_new]
