"""Property-based round-trips: every writer/parser pair on random circuits.

For arbitrary generated netlists, write→parse must preserve the function
of every primary output in all three netlist formats.  This catches
format-specific escaping/collapsing bugs that the curated fixtures miss
(numeric names, deep branch nests, constants, single-input gates).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench_suite.randlogic import random_circuit
from repro.io_formats.bench import parse_bench, write_bench
from repro.io_formats.blif import parse_blif, write_blif
from repro.io_formats.verilog import parse_verilog, write_verilog
from repro.simulation.exhaustive import line_signatures

_SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

FORMATS = {
    "bench": (write_bench, parse_bench),
    "blif": (write_blif, parse_blif),
    "verilog": (write_verilog, parse_verilog),
}


def _outputs_match(original, clone):
    orig = line_signatures(original)
    new = line_signatures(clone)
    assert [original.lines[i].name for i in original.inputs] == [
        clone.lines[i].name for i in clone.inputs
    ]
    for o1, o2 in zip(original.outputs, clone.outputs, strict=True):
        assert original.lines[o1].name == clone.lines[o2].name
        assert orig[o1] == new[o2]


@pytest.mark.parametrize("fmt", sorted(FORMATS))
@given(seed=st.integers(min_value=0, max_value=10_000))
@_SETTINGS
def test_random_circuit_round_trip(fmt, seed):
    writer, parser = FORMATS[fmt]
    circuit = random_circuit(seed, num_inputs=5, num_gates=18)
    clone = parser(writer(circuit))
    _outputs_match(circuit, clone)


@pytest.mark.parametrize("fmt", sorted(FORMATS))
@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=10, deadline=None)
def test_double_round_trip_stable(fmt, seed):
    """write(parse(write(c))) == write(parse_result) — idempotence."""
    writer, parser = FORMATS[fmt]
    circuit = random_circuit(seed, num_inputs=4, num_gates=10)
    once = writer(parser(writer(circuit)))
    twice = writer(parser(once))
    assert once == twice
