"""KISS2 parser/writer round-trips and error reporting."""

from __future__ import annotations

import pytest

from repro.errors import ParseError
from repro.io_formats.kiss2 import parse_kiss2, write_kiss2

GOOD = """\
.i 2
.o 1
.p 3
.s 2
.r a
00 a a 0
01 a b 1
-- b a 1
.e
"""


class TestParse:
    def test_basic(self):
        fsm = parse_kiss2(GOOD, name="toy")
        assert fsm.name == "toy"
        assert fsm.num_inputs == 2
        assert fsm.num_outputs == 1
        assert fsm.states == ["a", "b"]
        assert fsm.reset_state == "a"
        assert len(fsm.transitions) == 3

    def test_comments_and_blank_lines(self):
        text = "# header\n\n.i 1\n.o 1\n0 s s 0  # stay\n1 s s 1\n"
        fsm = parse_kiss2(text)
        assert len(fsm.transitions) == 2

    def test_reset_defaults_to_first_present(self):
        text = ".i 1\n.o 1\n0 q q 0\n1 q q 1\n"
        assert parse_kiss2(text).reset_state == "q"

    def test_p_mismatch(self):
        with pytest.raises(ParseError, match="declares"):
            parse_kiss2(".i 1\n.o 1\n.p 5\n0 s s 0\n")

    def test_s_mismatch(self):
        with pytest.raises(ParseError, match="declares"):
            parse_kiss2(".i 1\n.o 1\n.s 3\n0 s s 0\n")

    def test_missing_header(self):
        with pytest.raises(ParseError, match=r"\.i/\.o"):
            parse_kiss2("00 a b 1\n")

    def test_wrong_cube_width(self):
        with pytest.raises(ParseError, match="width"):
            parse_kiss2(".i 2\n.o 1\n011 a a 0\n")

    def test_wrong_output_width(self):
        with pytest.raises(ParseError, match="width"):
            parse_kiss2(".i 1\n.o 2\n0 a a 0\n")

    def test_bad_cube_chars(self):
        with pytest.raises(ParseError, match="bad input cube"):
            parse_kiss2(".i 1\n.o 1\n2 a a 0\n")

    def test_bad_field_count(self):
        with pytest.raises(ParseError, match="4 fields"):
            parse_kiss2(".i 1\n.o 1\n0 a a\n")

    def test_unknown_reset(self):
        with pytest.raises(ParseError, match="never appears"):
            parse_kiss2(".i 1\n.o 1\n.r zz\n0 a a 0\n")

    def test_unknown_directive(self):
        with pytest.raises(ParseError, match="unknown directive"):
            parse_kiss2(".i 1\n.o 1\n.frob 2\n0 a a 0\n")

    def test_no_rows(self):
        with pytest.raises(ParseError, match="no transition rows"):
            parse_kiss2(".i 1\n.o 1\n")


class TestRoundTrip:
    def test_write_then_parse(self):
        fsm = parse_kiss2(GOOD, name="toy")
        text = write_kiss2(fsm)
        again = parse_kiss2(text, name="toy")
        assert again.states == fsm.states
        assert again.reset_state == fsm.reset_state
        assert again.transitions == fsm.transitions

    def test_suite_sources_round_trip(self):
        from repro.bench_suite.mcnc import MCNC_SUITE, kiss2_source

        for name in list(MCNC_SUITE)[:8]:
            fsm = parse_kiss2(kiss2_source(name), name=name)
            again = parse_kiss2(write_kiss2(fsm), name=name)
            assert again.transitions == fsm.transitions
