""".bench parser/writer: round-trips preserve function."""

from __future__ import annotations

import pytest

from repro.errors import ParseError
from repro.io_formats.bench import parse_bench, write_bench
from repro.simulation.exhaustive import line_signatures

C17_TEXT = """\
# c17 benchmark
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
"""


class TestParse:
    def test_c17(self):
        c = parse_bench(C17_TEXT, name="c17")
        assert c.num_inputs == 5
        assert c.num_outputs == 2
        assert c.num_gates == 6

    def test_auto_branching(self):
        c = parse_bench(C17_TEXT)
        # Lines 3, 11, 16 fan out twice each -> 6 branches inserted.
        from repro.circuit.netlist import LineKind

        branches = [ln for ln in c.lines if ln.kind is LineKind.BRANCH]
        assert len(branches) == 6

    def test_case_insensitive_gates(self):
        text = "INPUT(a)\nOUTPUT(y)\ny = nand(a, a2)\nINPUT(a2)\n"
        c = parse_bench(text)
        assert c.num_gates == 1

    def test_not_alias(self):
        text = "INPUT(a)\nOUTPUT(y)\ny = INV(a)\n"
        c = parse_bench(text)
        from repro.circuit.gate import GateType

        assert c.line("y").gate_type is GateType.NOT

    def test_unknown_gate(self):
        with pytest.raises(ParseError):
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = MUX(a, a, a)\n")

    def test_garbage_line(self):
        with pytest.raises(ParseError, match="unrecognized"):
            parse_bench("INPUT(a)\nwhat is this\n")

    def test_missing_outputs(self):
        with pytest.raises(ParseError, match="no OUTPUT"):
            parse_bench("INPUT(a)\nb = NOT(a)\n")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "fixture", ["example_circuit", "c17_circuit", "majority_circuit"]
    )
    def test_function_preserved(self, fixture, request):
        original = request.getfixturevalue(fixture)
        text = write_bench(original)
        parsed = parse_bench(text, name=original.name)
        assert parsed.num_inputs == original.num_inputs
        orig_sigs = line_signatures(original)
        new_sigs = line_signatures(parsed)
        for o_orig, o_new in zip(original.outputs, parsed.outputs, strict=True):
            assert orig_sigs[o_orig] == new_sigs[o_new]

    def test_written_text_parses_cleanly(self, example_circuit):
        text = write_bench(example_circuit)
        assert "INPUT(1)" in text
        assert "OUTPUT(9)" in text
        parse_bench(text)  # no exception


class TestParseErrorNarrowing:
    """Only real parse failures become ParseError; bugs surface intact."""

    def test_unknown_gate_is_parse_error_with_context(self):
        text = "INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n"
        with pytest.raises(ParseError) as excinfo:
            parse_bench(text, name="weird.bench")
        msg = str(excinfo.value)
        assert "line 3" in msg
        assert "weird.bench" in msg
        assert "FROB" in msg
        assert excinfo.value.line_no == 3
        from repro.errors import CircuitError

        assert isinstance(excinfo.value.__cause__, CircuitError)

    def test_non_parse_bug_surfaces_intact(self, monkeypatch):
        """A bug inside the gate lookup must not masquerade as a ParseError."""
        import repro.io_formats.bench as bench_mod

        def boom(name):
            raise RuntimeError("injected bug")

        monkeypatch.setattr(bench_mod, "gate_type_from_name", boom)
        text = "INPUT(a)\nOUTPUT(y)\ny = NAND(a, a)\n"
        with pytest.raises(RuntimeError, match="injected bug"):
            parse_bench(text)
