"""Entry point: ``PYTHONPATH=tools python -m reprolint src``."""

from __future__ import annotations

import sys

from reprolint.cli import main

sys.exit(main())
