"""The rule set: one class per determinism/distribution invariant.

Each rule names the invariant it protects and the historical bug class
that motivated it (see PAPER.md, "Determinism invariants and static
checks").  Rules are scoped by dotted module prefix — an invariant about
shard plans has no business flagging the FSM synthesizer — and every
finding carries an actionable message.
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence

from reprolint.engine import ClassInfo, Finding, ProjectIndex

__all__ = ["ALL_RULES", "Rule"]

_ = ClassInfo  # re-exported for rule authors extending the index


def _dotted(parts: Sequence[str]) -> str:
    return ".".join(parts)


def _in_scope(parts: Sequence[str], prefixes: Sequence[str]) -> bool:
    dotted = _dotted(parts)
    return any(
        dotted == p or dotted.startswith(p + ".") for p in prefixes
    )


def _call_chain(node: ast.expr) -> str | None:
    """Dotted name of an attribute/name chain (``np.random.default_rng``)."""
    names: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        names.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    names.append(cur.id)
    return ".".join(reversed(names))


class Rule:
    """Base class: subclasses set the metadata and implement ``check``."""

    code: str = ""
    name: str = ""
    description: str = ""
    #: Dotted module prefixes the rule applies to; empty = everywhere.
    scope: tuple[str, ...] = ()
    #: Whether modules under a ``tests`` component are exempt.
    skip_tests: bool = True

    def applies_to(self, parts: Sequence[str]) -> bool:
        if self.skip_tests and "tests" in parts:
            return False
        if not self.scope:
            return True
        return _in_scope(parts, self.scope)

    def check(
        self,
        path: str,
        parts: Sequence[str],
        tree: ast.Module,
        index: ProjectIndex,
    ) -> list[Finding]:
        raise NotImplementedError

    def finding(self, path: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            path,
            getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0) + 1,
            self.code,
            message,
        )


# ----------------------------------------------------------------------
# RPL001 — unseeded RNG construction
# ----------------------------------------------------------------------
class UnseededRng(Rule):
    """Every random stream must be seeded, or runs are unreproducible.

    The differential guarantee (queue ≡ pool ≡ inline ≡ serial) holds
    only because every sampled universe is drawn from an explicitly
    seeded stream.  ``random.Random()`` / ``np.random.default_rng()``
    with no seed pull OS entropy — two runs, or two workers, silently
    diverge.  Test code is exempt (fuzzing wants entropy).
    """

    code = "RPL001"
    name = "unseeded-rng"
    description = "unseeded RNG construction outside tests"

    _CONSTRUCTORS = ("Random", "RandomState", "default_rng")
    _CHAINS = {
        "random.Random",
        "random.seed",
        "np.random.RandomState",
        "numpy.random.RandomState",
    }
    _FROM_MODULES = {"random", "numpy.random"}

    def check(
        self,
        path: str,
        parts: Sequence[str],
        tree: ast.Module,
        index: ProjectIndex,
    ) -> list[Finding]:
        imported: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom):
                if node.module in self._FROM_MODULES:
                    imported.update(
                        alias.asname or alias.name
                        for alias in node.names
                        if alias.name in self._CONSTRUCTORS
                    )
        findings: list[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call) or node.args or node.keywords:
                continue
            chain = _call_chain(node.func)
            if chain is None:
                continue
            flagged = (
                chain in self._CHAINS
                or chain.endswith(".default_rng")
                or chain in imported
            )
            if flagged:
                what = chain.rsplit(".", maxsplit=1)[-1]
                findings.append(
                    self.finding(
                        path,
                        node,
                        f"`{chain}()` draws OS entropy — pass an explicit "
                        f"seed so every worker and every rerun sees the "
                        f"same {what} stream",
                    )
                )
        return findings


# ----------------------------------------------------------------------
# RPL002 — unordered iteration where order is load-bearing
# ----------------------------------------------------------------------
class UnorderedIteration(Rule):
    """Iteration order over sets feeds signatures and cache keys.

    In ``repro.parallel`` and ``repro.faultsim``, iteration order ends
    up in shard plans, content-addressed cache keys, and signature bit
    layouts — iterating a ``set`` (hash order, perturbed by
    ``PYTHONHASHSEED`` for str members) makes those artifacts differ
    between processes.  In ``repro.serve`` it ends up in ``/stats``
    documents and response ordering, which the byte-identity tests
    diff.  Iterate ``sorted(...)`` views, or justify with a pragma
    when order provably cannot escape.
    """

    code = "RPL002"
    name = "unordered-iteration"
    description = (
        "iteration over a set in order-sensitive modules "
        "(repro.parallel / repro.faultsim / repro.serve)"
    )
    scope = ("repro.parallel", "repro.faultsim", "repro.serve")

    _SET_CALLS = {"set", "frozenset"}
    _SET_METHODS = {
        "union",
        "intersection",
        "difference",
        "symmetric_difference",
        "copy",
    }
    _ITER_CALLS = {"list", "tuple", "enumerate", "iter"}

    def _is_set(self, node: ast.expr, set_names: set[str]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in set_names
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in self._SET_CALLS:
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr in self._SET_METHODS
            ):
                return self._is_set(func.value, set_names)
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return self._is_set(node.left, set_names) or self._is_set(
                node.right, set_names
            )
        return False

    def _scopes(
        self, tree: ast.Module
    ) -> Iterator[tuple[ast.AST, list[ast.stmt]]]:
        yield tree, tree.body
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node, node.body

    @staticmethod
    def _walk_scope(body: list[ast.stmt]) -> Iterator[ast.AST]:
        """Walk statements without descending into nested functions.

        Nested functions are separate name scopes (yielded separately
        by :meth:`_scopes`); descending here would attribute their
        locals — and their iteration sites — to the enclosing scope.
        """
        stack: list[ast.AST] = list(body)
        while stack:
            node = stack.pop()
            yield node
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                stack.append(child)

    def check(
        self,
        path: str,
        parts: Sequence[str],
        tree: ast.Module,
        index: ProjectIndex,
    ) -> list[Finding]:
        findings: list[Finding] = []
        for scope, body in self._scopes(tree):
            set_names: set[str] = set()
            # Two passes: first learn which local names hold sets
            # (assignments may follow uses textually in loops), then
            # flag the iteration sites.
            for node in self._walk_scope(body):
                if isinstance(node, (ast.Assign, ast.AnnAssign)):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    value = node.value
                    if value is not None and self._is_set(
                        value, set_names
                    ):
                        for target in targets:
                            if isinstance(target, ast.Name):
                                set_names.add(target.id)
            for node in self._walk_scope(body):
                for where, iterable in self._iteration_sites(node):
                    if self._is_set(iterable, set_names):
                        findings.append(
                            self.finding(
                                path,
                                where,
                                "iterating a set here makes the result "
                                "depend on hash order; wrap the "
                                "iterable in sorted(...)",
                            )
                        )
        return findings

    def _iteration_sites(
        self, node: ast.AST
    ) -> Iterator[tuple[ast.AST, ast.expr]]:
        if isinstance(node, ast.For):
            yield node, node.iter
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            for gen in node.generators:
                yield node, gen.iter
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Name)
                and func.id in self._ITER_CALLS
                and node.args
            ):
                yield node, node.args[0]


# ----------------------------------------------------------------------
# RPL003 — derived caches leaking into pickles
# ----------------------------------------------------------------------
class PickleCacheLeak(Rule):
    """``init=False`` dataclass fields must be dropped by __getstate__.

    Dataclasses ride the executor boundary inside ``ShardTask`` payload
    graphs.  A lazily-rebuilt cache declared ``field(init=False, ...)``
    that is *not* dropped in ``__getstate__`` bloats every pool/queue
    pickle with derived state — and deserializes stale if the
    derivation ever changes (the pre-PR-6 ``VectorUniverse._bit_index``
    bug).  A ``__getstate__`` inherited from a project base class
    counts (the generic cache-dropping pattern).
    """

    code = "RPL003"
    name = "pickle-cache-leak"
    description = (
        "dataclass with init=False cache fields but no __getstate__"
    )

    @staticmethod
    def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
        for deco in node.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            if isinstance(target, ast.Name) and target.id == "dataclass":
                return True
            if (
                isinstance(target, ast.Attribute)
                and target.attr == "dataclass"
            ):
                return True
        return False

    @staticmethod
    def _noinit_fields(node: ast.ClassDef) -> list[str]:
        names: list[str] = []
        for item in node.body:
            if not isinstance(item, ast.AnnAssign):
                continue
            value = item.value
            if not isinstance(value, ast.Call):
                continue
            chain = _call_chain(value.func)
            if chain not in ("field", "dataclasses.field"):
                continue
            for kw in value.keywords:
                if (
                    kw.arg == "init"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is False
                    and isinstance(item.target, ast.Name)
                ):
                    names.append(item.target.id)
        return names

    def check(
        self,
        path: str,
        parts: Sequence[str],
        tree: ast.Module,
        index: ProjectIndex,
    ) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not self._is_dataclass_decorated(node):
                continue
            fields = self._noinit_fields(node)
            if not fields:
                continue
            if index.has_getstate(node.name):
                continue
            listed = ", ".join(fields)
            findings.append(
                self.finding(
                    path,
                    node,
                    f"dataclass {node.name} has init=False field(s) "
                    f"[{listed}] but no __getstate__ dropping them — "
                    f"derived caches leak into executor pickles",
                )
            )
        return findings


# ----------------------------------------------------------------------
# RPL004 — exists-then-act (TOCTOU)
# ----------------------------------------------------------------------
class ExistsThenAct(Rule):
    """``.exists()`` then acting on the same path races other workers.

    The work queue's whole design is single-atomic-op transitions; an
    ``exists()`` probe followed by ``open``/``rename``/``unlink``/a
    write on the same path reintroduces a window in which a racing
    worker observes (or destroys) the stale branch.  The analysis
    service shares the hazard: it sits above the same shard cache and
    queue directories, with ``repro worker`` processes racing it.  Use
    EAFP (``try``/``except FileNotFoundError``) or an atomic
    create/rename.
    """

    code = "RPL004"
    name = "exists-then-act"
    description = (
        "`.exists()` followed by an act on the same path in "
        "repro.parallel / repro.serve (TOCTOU)"
    )
    scope = ("repro.parallel", "repro.serve")

    _MUTATORS = {
        "open",
        "unlink",
        "rename",
        "replace",
        "rmdir",
        "touch",
        "mkdir",
        "write_text",
        "write_bytes",
        "read_text",
        "read_bytes",
        "symlink_to",
        "hardlink_to",
    }

    @staticmethod
    def _pos(node: ast.AST) -> tuple[int, int]:
        return (
            getattr(node, "lineno", 0),
            getattr(node, "col_offset", 0),
        )

    def check(
        self,
        path: str,
        parts: Sequence[str],
        tree: ast.Module,
        index: ProjectIndex,
    ) -> list[Finding]:
        findings: list[Finding] = []
        functions = [
            node
            for node in ast.walk(tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for func in functions:
            probes: list[tuple[str, ast.Call]] = []
            for node in ast.walk(func):
                if not isinstance(node, ast.Call):
                    continue
                callee = node.func
                if (
                    isinstance(callee, ast.Attribute)
                    and callee.attr == "exists"
                    and not node.args
                ):
                    probes.append((ast.dump(callee.value), node))
                elif (
                    _call_chain(callee)
                    in ("os.path.exists", "path.exists", "op.exists")
                    and node.args
                ):
                    probes.append((ast.dump(node.args[0]), node))
            if not probes:
                continue
            for node in ast.walk(func):
                if not isinstance(node, ast.Call):
                    continue
                for probe_dump, probe in probes:
                    if self._pos(node) <= self._pos(probe):
                        continue
                    if self._acts_on(node, probe_dump):
                        findings.append(
                            self.finding(
                                path,
                                node,
                                "this acts on a path probed with "
                                "`.exists()` earlier in the function — "
                                "the window between probe and act races "
                                "other workers; use EAFP or an atomic "
                                "rename",
                            )
                        )
                        break
        return findings

    def _acts_on(self, call: ast.Call, probe_dump: str) -> bool:
        callee = call.func
        if (
            isinstance(callee, ast.Attribute)
            and callee.attr in self._MUTATORS
            and ast.dump(callee.value) == probe_dump
        ):
            return True
        # The probed path handed to *any* call (os.rename, a private
        # _write helper, open) counts as an act.
        if isinstance(callee, ast.Attribute) and callee.attr == "exists":
            return False
        return any(
            ast.dump(arg) == probe_dump
            for arg in list(call.args)
            + [kw.value for kw in call.keywords]
        )


# ----------------------------------------------------------------------
# RPL005 — numpy uint64 hazards in the packed kernels
# ----------------------------------------------------------------------
class Uint64Hazard(Rule):
    """Signed/float contamination of the ``uint64`` word lanes.

    The packed-signature layout is exact only while every lane op stays
    in ``uint64``: true division or ``**`` promote to ``float64``
    (silently rounding bits ≥ 2**53), signed dtypes flip the top bit's
    meaning, and numpy 1.x promotes ``uint64 scalar ⋄ python int`` to
    ``float64``.  Popcount *accumulators* (``.sum(dtype=int64)``) are
    the one blessed signed idiom — counts, not bit lanes.
    """

    code = "RPL005"
    name = "uint64-hazard"
    description = (
        "signed/float promotion hazards in repro.logic.packed / "
        "repro.simulation.ppsfp"
    )
    scope = ("repro.logic.packed", "repro.simulation.ppsfp")

    _SIGNED = {"int64", "int32", "int16", "int8"}
    _ACCUMULATORS = {"sum", "cumsum", "prod", "dot", "matmul"}

    def _is_signed_dtype(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Attribute):
            return node.attr in self._SIGNED
        if isinstance(node, ast.Name):
            return node.id in self._SIGNED or node.id == "int"
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value in self._SIGNED | {"i1", "i2", "i4", "i8"}
        return False

    @staticmethod
    def _is_uint64_scalar(node: ast.expr) -> bool:
        if not isinstance(node, ast.Call):
            return False
        chain = _call_chain(node.func)
        return chain is not None and chain.endswith("uint64")

    def check(
        self,
        path: str,
        parts: Sequence[str],
        tree: ast.Module,
        index: ProjectIndex,
    ) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.BinOp):
                if isinstance(node.op, (ast.Div, ast.Pow)):
                    op = "/" if isinstance(node.op, ast.Div) else "**"
                    findings.append(
                        self.finding(
                            path,
                            node,
                            f"`{op}` promotes uint64 lanes to float64 "
                            f"(bits ≥ 2**53 round silently); use `//` "
                            f"or shifts",
                        )
                    )
                elif isinstance(node.left, ast.Constant) or isinstance(
                    node.right, ast.Constant
                ):
                    scalar = (
                        node.left
                        if self._is_uint64_scalar(node.left)
                        else node.right
                        if self._is_uint64_scalar(node.right)
                        else None
                    )
                    other = (
                        node.right if scalar is node.left else node.left
                    )
                    if (
                        scalar is not None
                        and isinstance(other, ast.Constant)
                        and isinstance(other.value, int)
                    ):
                        findings.append(
                            self.finding(
                                path,
                                node,
                                "uint64 scalar mixed with a bare python "
                                "int promotes to float64 on numpy 1.x; "
                                "wrap both operands in np.uint64",
                            )
                        )
            elif isinstance(node, ast.UnaryOp) and isinstance(
                node.op, ast.USub
            ):
                if "uint64" in ast.dump(node.operand):
                    findings.append(
                        self.finding(
                            path,
                            node,
                            "negating a uint64 value wraps modulo 2**64 "
                            "(or promotes to float64 for scalars); "
                            "compute the complement explicitly",
                        )
                    )
            elif isinstance(node, ast.Call):
                func = node.func
                exempt = (
                    isinstance(func, ast.Attribute)
                    and func.attr in self._ACCUMULATORS
                )
                if exempt:
                    continue
                for value in list(node.args) + [
                    kw.value for kw in node.keywords
                ]:
                    if self._is_signed_dtype(value):
                        findings.append(
                            self.finding(
                                path,
                                value,
                                "signed dtype in a uint64 kernel module "
                                "— bit lanes must stay unsigned "
                                "(accumulating popcounts via "
                                "`.sum(dtype=int64)` is the one blessed "
                                "signed idiom)",
                            )
                        )
        return findings


# ----------------------------------------------------------------------
# RPL006 — float equality in estimator/stopping-rule code
# ----------------------------------------------------------------------
class FloatEquality(Rule):
    """``==`` against float literals in CI/stopping-rule arithmetic.

    Stopping rules compare half-widths, confidences, and variance terms
    that arrive through floating-point arithmetic; exact equality
    against a float literal either never fires or fires on one platform
    and not another — a nondeterministic stopping round.  Compare with
    a tolerance, or restate the test on exact integers.
    """

    code = "RPL006"
    name = "float-equality"
    description = (
        "float ==/!= comparison in repro.adaptive / "
        "repro.faultsim.sampling"
    )
    scope = ("repro.adaptive", "repro.faultsim.sampling")

    def check(
        self,
        path: str,
        parts: Sequence[str],
        tree: ast.Module,
        index: ProjectIndex,
    ) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(
                node.ops, operands, operands[1:], strict=False
            ):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                for side in (left, right):
                    if isinstance(side, ast.Constant) and isinstance(
                        side.value, float
                    ):
                        findings.append(
                            self.finding(
                                path,
                                node,
                                f"exact comparison against "
                                f"{side.value!r} in estimator code — "
                                f"float arithmetic makes equality "
                                f"platform-dependent; use a tolerance "
                                f"or integer-scaled values",
                            )
                        )
                        break
        return findings


# ----------------------------------------------------------------------
# RPL007 — direct clock reads in the observability layer
# ----------------------------------------------------------------------
class DirectClockRead(Rule):
    """``repro.obs`` must read time through the injected ``Clock``.

    The tracer's determinism guarantee — byte-identical trace files
    under ``ManualClock`` in tests — holds only because every duration
    and timestamp funnels through the one injected clock.  A stray
    ``time.monotonic()`` in a span or histogram path reintroduces
    wall-clock jitter that no test can pin.  ``repro.obs.clock`` is the
    single audited call site (``SystemClock`` wraps the real functions)
    and is exempt.
    """

    code = "RPL007"
    name = "direct-clock-read"
    description = (
        "direct time.time()/monotonic()/perf_counter() in repro.obs "
        "(inject a Clock; repro.obs.clock is the audited call site)"
    )
    scope = ("repro.obs",)

    _FUNCTIONS = {
        "time",
        "monotonic",
        "perf_counter",
        "time_ns",
        "monotonic_ns",
        "perf_counter_ns",
    }

    def applies_to(self, parts: Sequence[str]) -> bool:
        if _dotted(parts) == "repro.obs.clock":
            return False  # the single audited call site
        return super().applies_to(parts)

    def check(
        self,
        path: str,
        parts: Sequence[str],
        tree: ast.Module,
        index: ProjectIndex,
    ) -> list[Finding]:
        imported: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                imported.update(
                    alias.asname or alias.name
                    for alias in node.names
                    if alias.name in self._FUNCTIONS
                )
        findings: list[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _call_chain(node.func)
            if chain is None:
                continue
            flagged = (
                chain.startswith("time.")
                and chain[len("time.") :] in self._FUNCTIONS
            ) or chain in imported
            if flagged:
                findings.append(
                    self.finding(
                        path,
                        node,
                        f"`{chain}()` reads the process clock directly — "
                        f"observability code takes an injected Clock "
                        f"(``obs.system_clock()`` by default) so tests "
                        f"can drive time deterministically; the only "
                        f"audited call site is repro.obs.clock",
                    )
                )
        return findings


ALL_RULES: tuple[Rule, ...] = (
    UnseededRng(),
    UnorderedIteration(),
    PickleCacheLeak(),
    ExistsThenAct(),
    Uint64Hazard(),
    FloatEquality(),
    DirectClockRead(),
)
