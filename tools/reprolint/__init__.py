"""reprolint — determinism-invariant static analysis for this repo.

The repository's headline guarantee is that every execution substrate
(queue ≡ pool ≡ inline ≡ serial) produces bit-for-bit identical
detection tables.  The differential test suite enforces that guarantee
*dynamically* — after a nondeterminism bug has already been written.
``reprolint`` encodes the invariant classes those bugs came from as
named AST rules and checks them *statically*, before the code runs:

========  ==========================================================
RPL001    unseeded RNG construction outside tests
RPL002    unordered (set) iteration where order feeds signatures,
          shard plans, or cache keys (``repro.parallel`` /
          ``repro.faultsim``)
RPL003    dataclasses with ``init=False`` cache fields and no
          ``__getstate__`` (derived state leaking into executor
          pickles — the PR 6 ``VectorUniverse`` bug class)
RPL004    ``.exists()`` followed by an act on the same path
          (TOCTOU) inside ``repro.parallel``
RPL005    numpy ``uint64`` hazards (signed dtypes, silent float
          promotion) in the packed/PPSFP kernels
RPL006    float ``==``/``!=`` comparisons in the CI-estimator and
          stopping-rule code
========  ==========================================================

Run it as ``python -m reprolint src`` (with ``tools/`` on the path).
Suppress a finding with a justified pragma on the flagged line::

    if path.exists():  # reprolint: ignore[RPL004] -- probe only, no act

The justification after ``--`` is mandatory; a bare suppression is
itself reported (RPL000).
"""

from __future__ import annotations

from reprolint.engine import Finding, lint_file, lint_paths
from reprolint.rules import ALL_RULES, Rule

__version__ = "1.0"

__all__ = [
    "ALL_RULES",
    "Finding",
    "Rule",
    "lint_file",
    "lint_paths",
]
