"""``python -m reprolint`` — the command-line front end."""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from reprolint.engine import lint_paths
from reprolint.rules import ALL_RULES


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=(
            "Determinism-invariant static analysis for this repository. "
            "Exit status 1 when any finding is reported."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RPLnnn",
        help="run only these rule codes (repeatable)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        for rule in ALL_RULES:
            scope = ", ".join(rule.scope) if rule.scope else "all modules"
            print(f"{rule.code}  {rule.name}: {rule.description} [{scope}]")
        return 0
    try:
        findings = lint_paths(args.paths, select=args.select)
    except (ValueError, OSError) as exc:
        print(f"reprolint: {exc}", file=sys.stderr)
        return 2
    for finding in findings:
        print(finding.render())
    if findings:
        print(
            f"reprolint: {len(findings)} finding(s)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
