"""The reprolint driver: file discovery, rule dispatch, suppressions.

The engine is deliberately small: it walks the requested paths, parses
each ``*.py`` file once, derives a dotted *module path* (everything
after the last ``src`` path component, so fixture trees that embed an
``src/repro/...`` layout are analyzed under the same scoping as the real
tree), asks every selected rule for findings, and filters them through
the pragma layer.

Suppression pragmas live on the flagged line::

    value = lazy()  # reprolint: ignore[RPL003] -- rebuilt on first use

``ignore[...]`` takes a comma-separated rule list; the justification
after ``--`` (or ``:``) is mandatory.  A suppression with no
justification does not suppress anything — it is reported as RPL000 so
an unexplained escape hatch can never land silently.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

if TYPE_CHECKING:
    from reprolint.rules import Rule

#: Reported when an ``ignore[...]`` pragma carries no justification.
MISSING_JUSTIFICATION = "RPL000"

_PRAGMA = re.compile(
    r"#\s*reprolint:\s*ignore\[(?P<codes>[A-Z0-9,\s]+)\]"
    r"(?:\s*(?:--|:)\s*(?P<why>\S.*))?"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass(frozen=True)
class ClassInfo:
    """Project-wide class facts rules may need (RPL003 inheritance)."""

    name: str
    module: str
    bases: tuple[str, ...]
    defines_getstate: bool


class ProjectIndex:
    """Cross-file symbol table built in a cheap pre-pass.

    Currently records, for every class in the analyzed tree, whether it
    defines ``__getstate__`` and which base names it lists — enough for
    RPL003 to honor a ``__getstate__`` inherited from a project base
    class (e.g. the stratified universe inheriting the generic
    cache-dropping ``VectorUniverse.__getstate__``).  Resolution is by
    bare class name, which is unambiguous in this codebase.
    """

    def __init__(self) -> None:
        self._classes: dict[str, ClassInfo] = {}

    def add_tree(self, module: str, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            bases = tuple(
                base.id
                if isinstance(base, ast.Name)
                else base.attr
                if isinstance(base, ast.Attribute)
                else ""
                for base in node.bases
            )
            defines = any(
                isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                and item.name == "__getstate__"
                for item in node.body
            )
            self._classes[node.name] = ClassInfo(
                node.name, module, bases, defines
            )

    def has_getstate(self, class_name: str) -> bool:
        """Whether the class or any resolvable ancestor drops state."""
        seen: list[str] = []
        queue = [class_name]
        while queue:
            name = queue.pop()
            if name in seen:
                continue
            seen.append(name)
            info = self._classes.get(name)
            if info is None:
                continue
            if info.defines_getstate:
                return True
            queue.extend(info.bases)
        return False


def module_parts(path: Path) -> tuple[str, ...]:
    """Dotted-module components of ``path`` for scoping decisions.

    Everything after the *last* ``src`` component when one is present
    (so ``tests/fixtures/.../src/repro/parallel/x.py`` scopes exactly
    like ``src/repro/parallel/x.py``); otherwise the path's own parts.
    The trailing ``.py`` is stripped; package ``__init__`` files keep
    the component so the package scope still applies.
    """
    parts = list(path.parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if "src" in parts:
        last = len(parts) - 1 - parts[::-1].index("src")
        parts = parts[last + 1 :]
    return tuple(p for p in parts if p)


def _suppressions(
    source: str, path: str
) -> tuple[dict[int, frozenset[str]], list[Finding]]:
    """Per-line suppressed rule codes, plus RPL000 pragma findings."""
    by_line: dict[int, frozenset[str]] = {}
    bad: list[Finding] = []
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _PRAGMA.search(text)
        if match is None:
            continue
        codes = frozenset(
            c.strip() for c in match.group("codes").split(",") if c.strip()
        )
        if not match.group("why"):
            bad.append(
                Finding(
                    path,
                    lineno,
                    match.start() + 1,
                    MISSING_JUSTIFICATION,
                    "suppression needs a justification: "
                    "`# reprolint: ignore[RPLnnn] -- why this is safe`",
                )
            )
            continue
        by_line[lineno] = codes
    return by_line, bad


def _select_rules(select: Iterable[str] | None) -> "list[Rule]":
    from reprolint.rules import ALL_RULES

    if select is None:
        return list(ALL_RULES)
    wanted = set(select)
    unknown = wanted - {r.code for r in ALL_RULES}
    if unknown:
        raise ValueError(
            f"unknown rule code(s): {', '.join(sorted(unknown))}"
        )
    return [r for r in ALL_RULES if r.code in wanted]


def iter_python_files(paths: Sequence[str | Path]) -> Iterator[Path]:
    """Every ``*.py`` under the given files/directories, sorted."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(
                p
                for p in path.rglob("*.py")
                if not any(part.startswith(".") for part in p.parts)
            )
        else:
            yield path


def lint_file(
    path: str | Path,
    select: Iterable[str] | None = None,
    index: ProjectIndex | None = None,
) -> list[Finding]:
    """Findings for one file (convenience wrapper over the scan loop)."""
    return lint_paths([path], select=select, index=index)


def lint_paths(
    paths: Sequence[str | Path],
    select: Iterable[str] | None = None,
    index: ProjectIndex | None = None,
) -> list[Finding]:
    """Findings for every python file under ``paths``, location-sorted."""
    rules = _select_rules(select)
    files = list(iter_python_files(paths))
    parsed: list[tuple[Path, tuple[str, ...], str, ast.Module]] = []
    if index is None:
        index = ProjectIndex()
    for path in files:
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            raise ValueError(f"cannot parse {path}: {exc}") from exc
        parts = module_parts(path)
        parsed.append((path, parts, source, tree))
        index.add_tree(".".join(parts), tree)
    findings: list[Finding] = []
    for path, parts, source, tree in parsed:
        suppressed, pragma_findings = _suppressions(source, str(path))
        findings.extend(pragma_findings)
        for rule in rules:
            if not rule.applies_to(parts):
                continue
            for finding in rule.check(str(path), parts, tree, index):
                if rule.code in suppressed.get(finding.line, frozenset()):
                    continue
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings
