"""Applying the exhaustive analysis to a larger design (Section 4).

The analysis needs detection sets over the complete input space, which
caps the practical input count.  Section 4 suggests partitioning larger
circuits into sub-circuits.  This example builds a wide design (more
inputs than the exhaustive budget would allow in one piece), splits it
into output cones of bounded support, and analyzes each cone.

Run:  python examples/partition_large_design.py
"""

from repro.bench_suite.registry import get_circuit
from repro.circuit.builder import CircuitBuilder
from repro.circuit.gate import GateType
from repro.core.partition import PartitionedAnalysis


def build_wide_design(blocks: int = 6, block_inputs: int = 6):
    """A wide circuit: `blocks` cones of `block_inputs` inputs each.

    Adjacent blocks share one input, so the partitioner has to work for
    its grouping (supports overlap but the total is 31+ inputs — far
    beyond the exhaustive budget as one piece).
    """
    b = CircuitBuilder("wide_design")
    total_inputs = blocks * (block_inputs - 1) + 1
    for i in range(total_inputs):
        b.input(f"x{i}")
    for blk in range(blocks):
        base = blk * (block_inputs - 1)
        names = [f"x{base + j}" for j in range(block_inputs)]
        half = len(names) // 2
        b.gate(f"a{blk}", GateType.AND, names[:half])
        b.gate(f"o{blk}", GateType.OR, names[half:])
        b.gate(f"y{blk}", GateType.NAND, [f"a{blk}", f"o{blk}"])
        b.output(f"y{blk}")
    return b.build(auto_branch=True)


def main() -> int:
    wide = build_wide_design()
    print(f"wide design: {wide.num_inputs} inputs, {wide.num_gates} gates")
    print("too wide for one exhaustive pass — partitioning ...\n")

    parts = PartitionedAnalysis(wide, max_inputs=12)
    for key, value in parts.summary().items():
        print(f"  {key}: {value}")
    print()
    for cone in parts.cones:
        g = cone.analysis.guaranteed_n()
        print(
            f"  cone {cone.circuit.name}: "
            f"{cone.circuit.num_inputs} inputs, "
            f"{len(cone.analysis)} bridging faults, "
            f"guaranteed n = {g}"
        )
    print(
        f"\nfraction of analyzed faults guaranteed at n=10: "
        f"{parts.fraction_within(10):.4f}"
    )
    print(
        f"bridging pairs analyzable inside cones: "
        f"{parts.coverage_of_fault_sites:.2%} "
        "(bridges spanning two cones are outside the partitioned model)"
    )

    # The same machinery applies to a real suite circuit: mark1 has 9
    # primary inputs (5 FSM inputs + 4 state bits); a 9-input budget
    # analyzes each output cone exactly.
    print("\nPartitioned analysis of the suite circuit 'mark1':")
    parts2 = PartitionedAnalysis(get_circuit("mark1"), max_inputs=9)
    for key, value in parts2.summary().items():
        print(f"  {key}: {value}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
