"""The always-on analysis service: one build, many clients.

``repro serve`` keeps the expensive part of every analysis — the
detection tables — resident behind an HTTP/JSON API.  Three properties
make it more than a CLI wrapper:

* **Byte-identity** — a service response is byte-for-byte the output
  of the equivalent CLI invocation (same renderers, same parser, same
  defaults), so scripts can switch transports without re-validating.
* **Single-flight** — N concurrent identical requests cost exactly one
  table build; the other N-1 await the same in-flight future.
* **Tiered cache** — built tables land in a bounded in-memory hot tier
  (above the on-disk shard cache), so warm requests are served in
  milliseconds.

This example starts the service in-process (``BackgroundServer`` — the
same object ``repro serve`` runs in the foreground), then demonstrates
each property with real sockets: a cold burst of identical concurrent
requests, a warm re-request, a streamed adaptive analysis with
round-by-round progress, and the ``/stats`` document.

Equivalent CLI invocations:

    repro serve --port 8765 &
    curl -s -X POST localhost:8765/analyze \
        -d '{"circuit": "wide28", "backend": "packed", "samples": 256, "seed": 7}'
    curl -sN -X POST localhost:8765/analyze/stream \
        -d '{"circuit": "wide28", "backend": "adaptive", "target_halfwidth": 0.5, "seed": 7}'
    curl -s localhost:8765/stats

Workers can drain service-enqueued builds too: start the service with
``repro serve --executor queue --queue-dir /mnt/shared/q`` and point
``repro worker --queue /mnt/shared/q`` processes (any host) at the
same directory — see examples/distributed_analysis.py.

Run:  python examples/serve_analysis.py
"""

import json
import threading
import time
import urllib.request

from repro.serve import BackgroundServer

CIRCUIT = "wide28"
CLIENTS = 4


def get_stats(base: str) -> dict:
    with urllib.request.urlopen(f"{base}/stats", timeout=60) as resp:
        return json.loads(resp.read())


def post(base: str, route: str, payload: dict) -> bytes:
    req = urllib.request.Request(
        f"{base}{route}",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(req, timeout=300) as resp:
        return resp.read()


def main() -> int:
    with BackgroundServer() as server:
        base = server.address
        print(f"service listening at {base}\n")

        # -- single-flight: a cold burst of identical requests --------
        payload = {
            "circuit": CIRCUIT,
            "backend": "packed",
            "samples": 256,
            "seed": 7,
        }
        barrier = threading.Barrier(CLIENTS)
        bodies = []
        lock = threading.Lock()

        def client():
            barrier.wait()
            body = post(base, "/analyze", payload)
            with lock:
                bodies.append(body)

        start = time.perf_counter()
        threads = [threading.Thread(target=client) for _ in range(CLIENTS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        cold = time.perf_counter() - start

        flights = get_stats(base)["flights"]
        print(
            f"{CLIENTS} concurrent identical requests: "
            f"{flights['started']} build, {flights['joined']} joined "
            f"({cold:.2f}s total)"
        )
        assert len(set(bodies)) == 1

        # -- warm re-request: served from the hot tier ----------------
        start = time.perf_counter()
        warm_body = post(base, "/analyze", payload)
        warm = time.perf_counter() - start
        assert warm_body == bodies[0]
        print(f"warm re-request: {warm * 1e3:.1f} ms (byte-identical)\n")

        # -- streamed adaptive analysis: progress, then the report ----
        adaptive = {
            "circuit": CIRCUIT,
            "backend": "adaptive",
            "target_halfwidth": 0.5,
            "initial_samples": 32,
            "max_samples": 128,
            "seed": 7,
        }
        print("streamed adaptive analysis:")
        text = post(base, "/analyze/stream", adaptive).decode()
        progress = [
            line for line in text.splitlines() if line.startswith("progress: ")
        ]
        for line in progress:
            print(f"  {line}")
        report = "\n".join(
            line for line in text.splitlines()
            if not line.startswith("progress: ")
        )
        print(f"  ... {len(progress)} rounds, then the full report "
              f"({len(report)} bytes, byte-identical to the CLI)\n")

        # -- the /stats document --------------------------------------
        stats = get_stats(base)
        hot = stats["hot_tier"]
        print(
            f"/stats: {stats['requests']} requests, hot tier "
            f"{hot['hits']} hits / {hot['misses']} misses "
            f"(hit rate {hot['hit_rate']:.2f})"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
