"""Deterministic n-detection test generation (the paper's premise).

"The size of a compact n-detection test set increases approximately
linearly with n" — the reason n <= 10 became the accepted bound.  This
example generates compact n-detection test sets for several circuits
with the greedy set-multicover generator and a PODEM-based generator,
and prints size versus n.

Run:  python examples/atpg_ndetect.py [circuit ...]
"""

import sys

from repro.atpg.ndetect import greedy_ndetection_set, podem_ndetection_set
from repro.bench_suite.registry import get_circuit
from repro.faults.universe import FaultUniverse

DEFAULT_CIRCUITS = ["paper_example", "c17", "lion", "bbtas", "beecount"]
N_VALUES = (1, 2, 4, 6, 8, 10)


def main(argv: list[str]) -> int:
    names = argv or DEFAULT_CIRCUITS
    header = "  ".join(f"n={n:<3d}" for n in N_VALUES)
    print("Compact n-detection test-set sizes (greedy set multicover)")
    print(f"{'circuit':>14}  {header}")
    for name in names:
        universe = FaultUniverse(get_circuit(name))
        sizes = [
            len(greedy_ndetection_set(universe.target_table, n))
            for n in N_VALUES
        ]
        cells = "  ".join(f"{s:<5d}" for s in sizes)
        print(f"{name:>14}  {cells}")

    print(
        "\nPODEM-based generation (no exhaustive tables needed) "
        "for the example circuit:"
    )
    universe = FaultUniverse(get_circuit("paper_example"))
    for n in (1, 2, 3):
        tests = podem_ndetection_set(
            universe.circuit, universe.target_faults, n, seed=1
        )
        print(f"  n={n}: {len(tests)} tests -> {sorted(tests)}")
    print(
        "\nNote the near-linear growth with n — the motivation for the "
        "paper's question of how much coverage a bounded n leaves behind."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
