"""Worst-case analysis across benchmark circuits (Sections 2, Tables 2-3).

For each circuit: the percentage of four-way bridging faults guaranteed
to be detected by *any* n-detection test set, for n = 1..10, plus the
heavy tail (faults needing n >= 11 / 20 / 100) and — for the heaviest
circuit analyzed — the Figure 2 distribution of nmin values.

Run:  python examples/worst_case_analysis.py [circuit ...]
"""

import sys

from repro.bench_suite.registry import get_circuit
from repro.core.distribution import nmin_distribution, render_ascii_histogram
from repro.core.worst_case import WorstCaseAnalysis
from repro.faults.universe import FaultUniverse

DEFAULT_CIRCUITS = ["lion", "bbtas", "modulo12", "beecount", "bbara", "rie"]


def analyze(name: str) -> WorstCaseAnalysis:
    circuit = get_circuit(name)
    universe = FaultUniverse(circuit)
    analysis = WorstCaseAnalysis(
        universe.target_table, universe.untargeted_table
    )
    curve = analysis.coverage_curve([1, 2, 3, 4, 5, 10])
    cells = " ".join(f"{p:6.2f}" for p in curve)
    print(
        f"{name:>10}  |G|={len(analysis):6d}  "
        f"coverage% @ n=1,2,3,4,5,10: {cells}   "
        f">=11: {analysis.count_at_least(11)}"
    )
    return analysis


def main(argv: list[str]) -> int:
    names = argv or DEFAULT_CIRCUITS
    print("Worst-case guaranteed coverage of four-way bridging faults")
    print("(the Table 2 / Table 3 view of the paper)\n")
    analyses = {name: analyze(name) for name in names}

    # Figure 2 for the circuit with the heaviest tail.
    heaviest = max(analyses, key=lambda n: analyses[n].count_at_least(11))
    analysis = analyses[heaviest]
    if analysis.count_at_least(11):
        series = nmin_distribution(analysis.nmin_values(), minimum=11)
        print(f"\nDistribution of nmin(g) >= 11 for {heaviest} (Figure 2 view):")
        print(render_ascii_histogram(series[:25]))
    else:
        print("\nNo circuit in this run has faults with nmin >= 11.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
