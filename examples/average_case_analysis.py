"""Average-case analysis with Procedure 1 (Section 3, Table 5).

Builds K random n-detection test sets for a circuit, then estimates the
probability p(n, g) that an arbitrary n-detection test set detects each
bridging fault that is *not* guaranteed detection at n = 10
(``nmin(g) >= 11``), and prints the Table 5 histogram row.

Run:  python examples/average_case_analysis.py [circuit] [K]
"""

import sys

from repro.bench_suite.registry import get_circuit
from repro.core.average_case import TABLE5_THRESHOLDS, AverageCaseAnalysis
from repro.core.procedure1 import build_random_ndetection_sets
from repro.core.worst_case import WorstCaseAnalysis
from repro.faults.universe import FaultUniverse


def main(argv: list[str]) -> int:
    name = argv[0] if argv else "bbara"
    num_sets = int(argv[1]) if len(argv) > 1 else 200
    n_max = 10

    circuit = get_circuit(name)
    universe = FaultUniverse(circuit)
    worst = WorstCaseAnalysis(
        universe.target_table, universe.untargeted_table
    )
    hard = worst.indices_at_least(n_max + 1)
    print(
        f"{name}: {len(worst)} bridging faults, "
        f"{len(hard)} not guaranteed by a {n_max}-detection test set"
    )
    if not hard:
        print("Nothing to analyze — every fault is guaranteed at n <= 10.")
        return 0

    print(f"Building {num_sets} random {n_max}-detection test sets ...")
    family = build_random_ndetection_sets(
        universe.target_table, n_max=n_max, num_sets=num_sets, seed=2005
    )
    sizes = family.sizes(n_max)
    print(
        f"test-set sizes at n={n_max}: "
        f"min={min(sizes)} avg={sum(sizes) / len(sizes):.1f} max={max(sizes)}"
    )

    avg = AverageCaseAnalysis(
        family, universe.untargeted_table, fault_indices=hard
    )
    # Probabilities for each n show the diminishing return of raising n.
    for n in (1, 2, 5, n_max):
        probs = avg.probabilities(n)
        mean = sum(probs) / len(probs)
        print(f"  mean p({n:2d}, g) over hard faults = {mean:.3f}")

    hist = avg.histogram(n_max)
    print("\nTable 5 row (number of faults with p(10, g) >= threshold):")
    for t, count in zip(TABLE5_THRESHOLDS, hist):
        print(f"  p >= {t:<4g}: {count}")
    p_min, j_min = avg.minimum_probability(n_max)
    print(
        f"\nHardest fault: {universe.untargeted_table.fault_name(j_min)} "
        f"with p({n_max}, g) = {p_min:.3f}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
