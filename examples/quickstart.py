"""Quickstart: the paper's example analysis in ~40 lines.

Builds the Figure 1 circuit, computes the detection sets of the target
(stuck-at) and untargeted (four-way bridging) faults over the complete
input space, and reproduces Table 1: for the bridging fault
``g0 = (9,0,10,1)``, the smallest ``n`` such that *every* n-detection
test set is guaranteed to detect it.

Run:  python examples/quickstart.py
"""

from repro.bench_suite.example import paper_example, paper_example_ascii
from repro.core.worst_case import WorstCaseAnalysis
from repro.faults.universe import FaultUniverse
from repro.logic.bitops import set_bits

circuit = paper_example()
print("The paper's Figure 1 circuit:")
print(paper_example_ascii())
print()

# The fault universe: collapsed stuck-at targets F, detectable four-way
# bridging untargeted faults G, and their detection sets T(.) over U.
universe = FaultUniverse(circuit)
targets = universe.target_table
untargeted = universe.untargeted_table
print(f"|F| = {len(targets)} collapsed stuck-at faults")
print(f"|G| = {len(untargeted)} detectable bridging faults")
print()

# Table 1: which target faults overlap T(g0), and the nmin they imply.
g0_sig = untargeted.signatures[0]
print(f"g0 = {untargeted.fault_name(0)}, T(g0) = {set_bits(g0_sig)}")
print(f"{'i':>3} {'fault':>6} {'T(fi)':<40} nmin(g0,fi)")
for i in range(len(targets)):
    f_sig = targets.signatures[i]
    overlap = (f_sig & g0_sig).bit_count()
    if not overlap:
        continue
    nmin_gf = f_sig.bit_count() - overlap + 1
    vectors = " ".join(map(str, set_bits(f_sig)))
    print(f"{i:>3} {targets.fault_name(i):>6} {vectors:<40} {nmin_gf}")

# The worst case over all overlapping targets.
analysis = WorstCaseAnalysis(targets, untargeted)
print()
print(f"nmin(g0) = {analysis.records[0].nmin}  "
      "(any 3-detection test set is guaranteed to detect g0)")
print(f"Largest nmin over G: {analysis.guaranteed_n()}  "
      "(a 4-detection test set covers every bridging fault here)")
