"""Target-half-width analysis of a 40-input circuit, stratified.

A fixed ``--samples K`` forces a guess; this example lets the adaptive
controller pick ``K``.  It builds the rare-activation bridging strata
of ``wide40`` (exact activation probabilities from enumerated support
cones), then grows one seeded universe round by round — reusing every
previously simulated vector — until the confidence intervals of the
smallest ``N(g)`` estimates reach 5% relative half-width.  For
comparison it then runs the same stopping rule with uniform (unstratified)
growth, which exhausts the same budget without certifying the rare
faults.

Equivalent CLI invocation:

    repro analyze wide40 --backend adaptive --target-halfwidth 0.05 \\
        --stratify bridging

Run:  python examples/adaptive_analysis.py
"""

import time

from repro.adaptive import AdaptiveSampler, StoppingRule
from repro.bench_suite.registry import get_circuit
from repro.core.worst_case import WorstCaseAnalysis

CIRCUIT = "wide40"
RULE = StoppingRule(
    target_halfwidth=0.05,   # 5% relative CI half-width
    confidence=0.95,
    k_smallest=8,            # certify the 8 smallest N estimates
    initial_samples=64,
    max_samples=1 << 14,
)


def main() -> int:
    circuit = get_circuit(CIRCUIT)
    print(
        f"{CIRCUIT}: {circuit.num_inputs} inputs "
        f"(|U| = 2**{circuit.num_inputs}); growing K until the "
        f"{RULE.k_smallest} smallest N estimates reach "
        f"{RULE.target_halfwidth:.0%} relative half-width"
    )

    start = time.perf_counter()
    report = AdaptiveSampler(
        circuit, rule=RULE, seed=2005, stratify="bridging"
    ).run()
    elapsed = time.perf_counter() - start

    plan = report.plan
    print(
        f"\nstrata plan: {plan.num_strata} strata over "
        f"{len(plan.support)} support inputs"
    )
    for pred, stratum in zip(plan.predicates, plan.strata):
        print(
            f"  {stratum.label}: activation probability "
            f"{pred.probability:.4%}"
        )

    print("\nround-by-round K trajectory:")
    for line in report.trajectory_lines():
        print(f"  {line}")

    print(f"\nsmallest N estimates ({RULE.confidence:.0%} intervals):")
    for fe in report.focus:
        est = fe.estimate
        print(
            f"  {fe.kind} #{fe.fault_index}: {est.estimate:.4g} "
            f"[{est.low:.4g}, {est.high:.4g}]  "
            f"half-width/estimate = {fe.relative_halfwidth:.3f}"
        )

    worst = WorstCaseAnalysis(
        report.target_table,
        # The report keeps the raw bridging table; the analysis wants
        # the detectable subset (the paper's G).
        _dropped(report.untargeted_table),
    )
    print(
        f"\nworst-case scan over the certified universe "
        f"(K = {report.total_vectors}, {elapsed:.1f}s total):"
    )
    print(f"  guaranteed n (sample space): {worst.guaranteed_n()}")
    for n in (1, 2, 5, 10):
        print(
            f"  guaranteed detected at n={n}: "
            f"{100.0 * worst.fraction_within(n):.1f}%"
        )

    print("\nuniform growth under the same rule, for contrast:")
    uniform = AdaptiveSampler(circuit, rule=RULE, seed=2005).run()
    last = uniform.rounds[-1]
    print(
        f"  {uniform.reason} at K={uniform.total_vectors}; worst focus "
        f"half-width/estimate still "
        f"{last.relative_worst:.2f} (target {RULE.target_halfwidth})"
    )
    print(
        f"  -> stratified met the target with "
        f"{report.total_vectors} vectors; uniform sampling cannot "
        f"certify the rare-activation faults at any practical K"
    )
    return 0


def _dropped(table):
    kept = [
        (f, s) for f, s in zip(table.faults, table.signatures) if s
    ]
    return type(table)(
        table.circuit,
        [f for f, _ in kept],
        [s for _, s in kept],
        table.universe,
    )


if __name__ == "__main__":
    raise SystemExit(main())
