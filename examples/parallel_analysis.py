"""Sharded parallel detection-table construction on a wide circuit.

Building the fault × vector detection table dominates every analysis
and is embarrassingly parallel over faults.  This example analyzes a
>24-input suite circuit with the numpy-packed sampled backend, then
repeats the build through a ``ParallelBackend`` — fault shards executed
on a process pool, merged into a bit-identical table — and finally
replays it against the warm persistent shard cache.

Equivalent CLI invocations:

    repro analyze wide32 --backend packed --samples 1024 --seed 7 --jobs 4
    repro cache info

Run:  python examples/parallel_analysis.py
"""

import os
import tempfile
import time

from repro.bench_suite.registry import get_circuit
from repro.core.worst_case import WorstCaseAnalysis
from repro.faults.universe import FaultUniverse
from repro.faultsim.backends import PackedBackend
from repro.parallel import ParallelBackend, ShardCache, cache_stats

CIRCUIT = "wide32"
SAMPLES = 1024
JOBS = 4


def build(circuit, backend):
    start = time.perf_counter()
    universe = FaultUniverse(circuit, backend=backend)
    tables = universe.target_table, universe.untargeted_table
    return time.perf_counter() - start, tables


def main() -> int:
    circuit = get_circuit(CIRCUIT)
    print(
        f"{CIRCUIT}: {circuit.num_inputs} inputs "
        f"(|U| = 2**{circuit.num_inputs}, far beyond the exhaustive cap), "
        f"sampling K={SAMPLES} vectors"
    )

    base = PackedBackend(samples=SAMPLES, seed=7)
    single_time, (single_f, single_g) = build(circuit, base)
    print(f"\nsingle-process build: {single_time * 1e3:7.1f} ms")

    # A throwaway cache directory so the example is self-contained; drop
    # cache_dir= to use the persistent default (REPRO_CACHE_DIR or the
    # user cache dir), which `repro cache info` inspects.
    with tempfile.TemporaryDirectory() as cache_dir:
        parallel = ParallelBackend(base=base, jobs=JOBS, cache_dir=cache_dir)
        cold_time, (par_f, par_g) = build(circuit, parallel)
        assert par_f.signatures == single_f.signatures
        assert par_g.signatures == single_g.signatures
        print(
            f"jobs={JOBS} cold build:  {cold_time * 1e3:7.1f} ms "
            f"(bit-identical table, {os.cpu_count()} cpus)"
        )

        warm_time, (warm_f, _) = build(circuit, parallel)
        assert warm_f.signatures == single_f.signatures
        stats = cache_stats()
        print(
            f"jobs={JOBS} warm build:  {warm_time * 1e3:7.1f} ms "
            f"(shard cache: {stats['hits']} hits)"
        )
        cache = ShardCache(cache_dir)
        print(
            f"shard cache: {len(cache.entries())} entries, "
            f"{cache.total_bytes()} bytes"
        )

    worst = WorstCaseAnalysis(single_f, single_g)
    guaranteed = worst.guaranteed_n()
    print(
        f"\nworst-case analysis over the sampled universe: "
        f"|G| = {len(worst)}, guaranteed n (sample space) = {guaranteed}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
