"""Straggler-proof fleet analysis through the TCP broker.

The filesystem queue (``examples/distributed_analysis.py``) needs a
shared mount and leaves one question open: with first-come claims, a
single slow machine holding the last shard sets the makespan for the
whole fleet.  The TCP transport answers both — workers connect to a
broker over a socket (no shared filesystem), are push-dispatched work
the moment it exists, and when a worker goes idle while a colleague's
lease goes stale, the broker *steals* the shard: it duplicates it to
the idle worker, first completion wins, and the late completion is a
cache hit rather than a conflict (shard results are a pure function of
their content-addressed key).

This example analyzes a >24-input circuit with the numpy-packed
sampled backend three ways — inline, then through a heterogeneous
two-worker fleet with stealing off and on.  The straggler worker is
slowed by ``REPRO_STEAL_DELAY`` seconds per build (the same hook the
tests and CI use); with stealing on, the healthy worker rescues the
straggler's shard and the makespan collapses.

Equivalent CLI invocations:

    repro broker --port 8766 &                 # one coordinator
    repro worker --broker host:8766 &          # on any number of hosts
    repro analyze wide28 --backend packed --samples 1024 --seed 7 \
        --executor tcp --broker host:8766
    repro queue stats --broker host:8766

Run:  python examples/fleet_analysis.py
"""

import threading
import time

from repro.bench_suite.registry import get_circuit
from repro.faults.universe import FaultUniverse
from repro.faultsim.backends import PackedBackend
from repro.parallel import (
    BackgroundBroker,
    ParallelBackend,
    TcpExecutor,
    TcpWorker,
)

CIRCUIT = "wide28"
SAMPLES = 1024
STRAGGLER_DELAY = 1.0  # seconds added to the straggler's every build
SHARDS = 4


def build(circuit, backend):
    start = time.perf_counter()
    universe = FaultUniverse(circuit, backend=backend)
    tables = universe.target_table, universe.untargeted_table
    return time.perf_counter() - start, tables


def fleet_build(circuit, base, steal: bool):
    """One build against a fresh broker + straggler/healthy fleet."""
    with BackgroundBroker(steal=steal, steal_after=0.2) as broker:
        # Ids sort straggler-first, so it gets the first shard of every
        # submit — the worst case the scheduler has to rescue.
        fleet = [
            TcpWorker(
                broker=broker.address,
                worker_id="a-straggler",
                build_delay=STRAGGLER_DELAY,
                use_cache=False,
            ),
            TcpWorker(
                broker=broker.address,
                worker_id="b-healthy",
                use_cache=False,
            ),
        ]
        threads = [
            threading.Thread(
                target=lambda w=w: w.serve(idle_exit=10.0), daemon=True
            )
            for w in fleet
        ]
        for thread in threads:
            thread.start()
        backend = ParallelBackend(
            base=base,
            shards=SHARDS,
            use_cache=False,  # measure real distributed construction
            executor=TcpExecutor(broker=broker.address),
        )
        elapsed, tables = build(circuit, backend)
        counters = broker.stats()["counters"]
        for worker in fleet:
            worker.stop()
        for thread in threads:
            thread.join(timeout=30)
    return elapsed, tables, counters


def main() -> int:
    circuit = get_circuit(CIRCUIT)
    print(
        f"{CIRCUIT}: {circuit.num_inputs} inputs "
        f"(|U| = 2**{circuit.num_inputs}), sampling K={SAMPLES} vectors;"
        f" fleet = 1 healthy worker + 1 straggler "
        f"(+{STRAGGLER_DELAY:.0f}s per build)"
    )

    base = PackedBackend(samples=SAMPLES, seed=7)
    inline_time, (inline_f, inline_g) = build(circuit, base)
    print(f"\ninline build:          {inline_time * 1e3:7.1f} ms")

    off_time, (off_f, off_g), off_counters = fleet_build(
        circuit, base, steal=False
    )
    print(
        f"fleet, steal off:      {off_time * 1e3:7.1f} ms "
        f"(makespan set by the straggler)"
    )

    on_time, (on_f, on_g), on_counters = fleet_build(
        circuit, base, steal=True
    )
    print(
        f"fleet, steal on:       {on_time * 1e3:7.1f} ms "
        f"({on_counters['steals']} steal(s), "
        f"{on_counters['duplicates']} duplicate completion(s))"
    )
    print(
        f"\nsteal speedup: {off_time / on_time:.1f}x on this fleet "
        f"(steals={on_counters['steals']}, off-run steals="
        f"{off_counters['steals']})"
    )

    for label, (f_table, g_table) in (
        ("steal-off", (off_f, off_g)),
        ("steal-on", (on_f, on_g)),
    ):
        assert f_table.signatures == inline_f.signatures, label
        assert g_table.signatures == inline_g.signatures, label
        assert g_table.faults == inline_g.faults, label
    print(
        "\nfleet tables are bit-for-bit identical to the inline build,"
        "\nstolen shards included (first completion wins; a double"
        "\ncompletion is a content-addressed cache hit, not a conflict)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
