"""End-to-end tracing of an analysis run, from spans to summary.

Every layer of the pipeline is instrumented with spans — table builds,
PPSFP kernel batches, executor shards, adaptive rounds — but the
instrumentation is dormant by default: with no tracer active each call
site costs a shared no-op context manager (the overhead benchmark pins
this under 2% of a build).  Activating a tracer turns the same run
into a JSONL trace file whose records reassemble into one span tree,
even when several processes (pool workers, a ``repro worker`` fleet)
append to it concurrently.

This example runs a parallel analysis under a programmatic tracer,
then consumes its own trace: the span tree, the per-name aggregates,
the critical path, and the coverage figure (how much of the run's wall
time is attributed to named child spans).

Equivalent CLI invocations:

    repro --trace run.jsonl analyze wide28 --backend packed \
        --samples 512 --seed 7 --executor pool --jobs 4
    repro trace summary run.jsonl
    repro trace tree run.jsonl

Run:  python examples/traced_analysis.py
"""

import tempfile
from pathlib import Path

from repro import obs
from repro.bench_suite.registry import get_circuit
from repro.faults.universe import FaultUniverse
from repro.faultsim.backends import PackedBackend
from repro.obs.summary import (
    load_trace,
    render_summary,
    render_tree,
    summarize,
)
from repro.parallel import ParallelBackend, PoolExecutor

CIRCUIT = "wide28"
SAMPLES = 512
JOBS = 4


def main() -> int:
    circuit = get_circuit(CIRCUIT)
    backend = ParallelBackend(
        base=PackedBackend(samples=SAMPLES, seed=7),
        use_cache=False,
        executor=PoolExecutor(jobs=JOBS),
    )

    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "run.jsonl"

        # Activate a tracer for the duration of the run.  The CLI's
        # ``--trace run.jsonl`` flag does exactly this around the
        # selected command; obs.reset restores the previous (no-op)
        # tracer so instrumentation goes back to costing nothing.
        tracer = obs.Tracer(obs.JsonlTraceWriter(str(trace_path)))
        previous = obs.activate(tracer)
        try:
            with obs.span("analyze", circuit=CIRCUIT, samples=SAMPLES):
                universe = FaultUniverse(circuit, backend=backend)
                universe.target_table
                universe.untargeted_table
        finally:
            tracer.close()
            obs.reset(previous)

        # The trace file is plain JSONL: one record per finished span
        # or event, reassembled by content (span ids), not file order.
        nodes = load_trace(str(trace_path))
        print(f"trace: {len(nodes)} spans in {trace_path.name}\n")

        summary = summarize(nodes)
        print(render_summary(summary))
        print()
        print(render_tree(summary))

        # Pool shards run in subprocesses, so the trace spans more
        # than one process, stitched by the (trace_id, span_id) tuple
        # each pickled shard task carries.
        assert len(summary.procs) > 1, "expected multi-process trace"
        # Most of the run's wall time lands in named child spans; the
        # remainder is uninstrumented setup (fault enumeration and
        # collapsing) charged to the root's self time.
        assert summary.coverage >= 0.8, (
            f"span coverage only {summary.coverage:.1%}"
        )
        print(
            f"\n{len(summary.procs)} processes contributed spans; "
            f"{summary.coverage:.1%} of the run's wall time is "
            f"attributed to named child spans"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
