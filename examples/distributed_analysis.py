"""Distributed detection-table construction through a work queue.

The shard cache proved shard results are location-independent: a
shard's signatures are a pure function of (circuit structure, backend
configuration, fault slice).  The queue executor completes the thought
— shard tasks are published to a shared directory, independent
``repro worker`` processes (on this or any host that can see the
directory) drain them, and the merged table is bit-for-bit identical
to the single-process build.

This example analyzes a >24-input circuit with the numpy-packed
sampled backend three ways — inline, and distributed across two worker
processes launched here for demonstration (in real use they would
already be running, possibly on other machines), including a worker
that crashes mid-shard to show the lease-expiry recovery path.

Equivalent CLI invocations:

    repro worker --queue /mnt/shared/q &     # on any number of hosts
    repro analyze wide28 --backend packed --samples 1024 --seed 7 \
        --executor queue --queue-dir /mnt/shared/q
    repro queue info --queue /mnt/shared/q

Run:  python examples/distributed_analysis.py
"""

import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.bench_suite.registry import get_circuit
from repro.faults.universe import FaultUniverse
from repro.faultsim.backends import PackedBackend
from repro.parallel import ParallelBackend, QueueExecutor, WorkQueue

CIRCUIT = "wide28"
SAMPLES = 1024
WORKERS = 2

SRC = Path(__file__).resolve().parents[1] / "src"


def launch_worker(queue_dir: str, crash_after: int = 0):
    """Start one `repro worker` subprocess (a stand-in for any host)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    if crash_after:
        # Test hook: hard-exit after claiming the Nth task, mid-shard,
        # to demonstrate lease-expiry recovery.
        env["REPRO_QUEUE_CRASH_AFTER_CLAIM"] = str(crash_after)
    else:
        env.pop("REPRO_QUEUE_CRASH_AFTER_CLAIM", None)
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "worker",
            "--queue", queue_dir,
            "--poll-interval", "0.05",
            "--lease-timeout", "2",
            "--idle-exit", "30",
        ],
        env=env,
    )


def build(circuit, backend):
    start = time.perf_counter()
    universe = FaultUniverse(circuit, backend=backend)
    tables = universe.target_table, universe.untargeted_table
    return time.perf_counter() - start, tables


def main() -> int:
    circuit = get_circuit(CIRCUIT)
    print(
        f"{CIRCUIT}: {circuit.num_inputs} inputs "
        f"(|U| = 2**{circuit.num_inputs}), sampling K={SAMPLES} vectors"
    )

    base = PackedBackend(samples=SAMPLES, seed=7)
    inline_time, (inline_f, inline_g) = build(circuit, base)
    print(f"\ninline build: {inline_time * 1e3:7.1f} ms")

    with tempfile.TemporaryDirectory() as tmp:
        queue_dir = str(Path(tmp) / "queue")
        backend = ParallelBackend(
            base=base,
            use_cache=False,  # measure real distributed construction
            executor=QueueExecutor(
                queue_dir=queue_dir,
                poll_interval=0.02,
                lease_timeout=2.0,
            ),
        )
        # One healthy worker, plus one that dies holding its first
        # lease — the expired lease is requeued and the build recovers.
        workers = [
            launch_worker(queue_dir),
            launch_worker(queue_dir, crash_after=1),
        ]
        queue_time, (queue_f, queue_g) = build(circuit, backend)
        print(
            f"queue build:  {queue_time * 1e3:7.1f} ms "
            f"({WORKERS} workers, one crashed mid-shard and was "
            f"requeued)"
        )
        stats = WorkQueue(queue_dir).stats()
        print(f"queue state after the run: {stats}")
        for proc in workers:
            proc.terminate()
        for proc in workers:
            proc.wait(timeout=30)

    assert queue_f.signatures == inline_f.signatures
    assert queue_g.signatures == inline_g.signatures
    assert queue_g.faults == inline_g.faults
    print(
        "\ndistributed tables are bit-for-bit identical to the inline "
        "build\n(shard-order merge + content-addressed results ⇒ "
        "location independence)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
