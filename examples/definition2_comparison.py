"""Definition 1 vs Definition 2 n-detection test sets (Section 4, Table 6).

Under Definition 2, two tests only count as two detections of a target
fault when their common-bits vector does NOT detect it under 3-valued
simulation — the tests must differ in the conditions they use.  This
example builds test-set families under both counting rules and compares
the detection probabilities of the hard bridging faults.

Run:  python examples/definition2_comparison.py [circuit] [K]
"""

import sys
import time

from repro.bench_suite.registry import get_circuit
from repro.core.average_case import AverageCaseAnalysis
from repro.core.procedure1 import build_random_ndetection_sets
from repro.core.worst_case import WorstCaseAnalysis
from repro.faults.universe import FaultUniverse


def main(argv: list[str]) -> int:
    name = argv[0] if argv else "bbara"
    num_sets = int(argv[1]) if len(argv) > 1 else 100
    n_max = 10

    circuit = get_circuit(name)
    universe = FaultUniverse(circuit)
    worst = WorstCaseAnalysis(
        universe.target_table, universe.untargeted_table
    )
    hard = worst.indices_at_least(n_max + 1)
    if not hard:
        hard = worst.indices_at_least(4)  # fall back to a softer tail
    if not hard:
        # Easy circuit: every fault is guaranteed by n <= 3.  Compare the
        # definitions over the whole untargeted universe instead.
        hard = list(range(len(worst)))
    print(
        f"{name}: comparing Definition 1 vs Definition 2 on "
        f"{len(hard)} hard bridging faults (K={num_sets})\n"
    )

    results = {}
    for counting in ("def1", "def2"):
        start = time.time()
        family = build_random_ndetection_sets(
            universe.target_table,
            n_max=n_max,
            num_sets=num_sets,
            seed=2005,
            counting=counting,
        )
        avg = AverageCaseAnalysis(
            family, universe.untargeted_table, fault_indices=hard
        )
        probs = avg.probabilities(n_max)
        sizes = family.sizes(n_max)
        results[counting] = probs
        print(
            f"{counting}: mean p({n_max},g) = "
            f"{sum(probs) / len(probs):.4f}   "
            f"#p=1: {sum(1 for p in probs if p >= 1.0)}/{len(probs)}   "
            f"avg |T| = {sum(sizes) / len(sizes):.1f}   "
            f"[{time.time() - start:.1f}s]"
        )

    improved = sum(
        1 for a, b in zip(results["def1"], results["def2"]) if b > a
    )
    worsened = sum(
        1 for a, b in zip(results["def1"], results["def2"]) if b < a
    )
    print(
        f"\nPer-fault change under Definition 2: "
        f"{improved} improved, {worsened} worsened, "
        f"{len(hard) - improved - worsened} unchanged"
    )
    print(
        "(the paper's Table 6 shows the same effect: Definition 2 shifts "
        "probability mass upward)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
