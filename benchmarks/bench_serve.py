"""Load benchmark for the ``repro serve`` analysis service.

``test_serve_load`` is the acceptance benchmark of the service
subsystem: it starts the service in-process (``BackgroundServer`` — a
real socket listener on a daemon thread), then

1. fires ``REPRO_BENCH_SERVE_CLIENTS`` *simultaneous identical* cold
   requests and proves single-flight collapsed them into exactly one
   table build (the ``/stats`` flight counters are the witness);
2. proves the service response is byte-identical to the CLI's stdout
   for the same analysis;
3. drives a warm closed-loop load (``CLIENTS × REQUESTS`` requests over
   persistent-thread clients), measuring client-side latency and
   throughput;
4. scrapes ``/stats`` and asserts the hot-tier hit rate is positive —
   the warm phase must be served from the in-memory tier, not rebuilt.

The numbers land in ``benchmarks/out/BENCH_serve.json`` (requests/s,
p50/p99 latency, cache hit rate, flight counters) so CI accumulates a
service-performance trajectory alongside ``BENCH_faultsim.json``.

Environment knobs (CI smoke uses small values):
``REPRO_BENCH_SERVE_CLIENTS`` (default 4) concurrent clients,
``REPRO_BENCH_SERVE_REQUESTS`` (default 25) warm requests per client,
``REPRO_BENCH_SERVE_CIRCUIT`` (default ``wide28``) registry circuit,
``REPRO_BENCH_SERVE_SAMPLES`` (default 128) sampled-universe size.
"""

from __future__ import annotations

import contextlib
import io
import json
import os
import platform
import threading
import time
import urllib.request
from pathlib import Path

from conftest import env_int

OUT_PATH = Path(__file__).parent / "out" / "BENCH_serve.json"

CLIENTS = env_int("REPRO_BENCH_SERVE_CLIENTS", 4)
REQUESTS = env_int("REPRO_BENCH_SERVE_REQUESTS", 25)
CIRCUIT = os.environ.get("REPRO_BENCH_SERVE_CIRCUIT") or "wide28"
SAMPLES = env_int("REPRO_BENCH_SERVE_SAMPLES", 128)

PAYLOAD = {
    "circuit": CIRCUIT,
    "backend": "packed",
    "samples": SAMPLES,
    "seed": 7,
}


def _post(base: str, route: str, payload: dict) -> bytes:
    req = urllib.request.Request(
        f"{base}{route}",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(req, timeout=300) as resp:
        assert resp.status == 200, resp.status
        return resp.read()


def _get_json(base: str, route: str) -> dict:
    with urllib.request.urlopen(f"{base}{route}", timeout=60) as resp:
        assert resp.status == 200, resp.status
        return json.loads(resp.read())


def _cli_stdout(argv: list[str]) -> bytes:
    from repro.cli import main

    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        code = main(argv)
    assert code == 0, f"CLI exited {code} for {argv}"
    return out.getvalue().encode()


def _quantile(sorted_values: list[float], q: float) -> float:
    return sorted_values[int(q * (len(sorted_values) - 1))]


def test_serve_load(record_speedup):
    from repro.serve import BackgroundServer

    with BackgroundServer() as server:
        base = server.address

        # -- phase 1: cold burst; single-flight must collapse it -------
        barrier = threading.Barrier(CLIENTS)
        cold_bodies: list[bytes] = []
        cold_lock = threading.Lock()

        def cold_client() -> None:
            barrier.wait()
            body = _post(base, "/analyze", PAYLOAD)
            with cold_lock:
                cold_bodies.append(body)

        cold_t0 = time.perf_counter()
        threads = [
            threading.Thread(target=cold_client) for _ in range(CLIENTS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        cold_s = time.perf_counter() - cold_t0

        assert len(set(cold_bodies)) == 1, "cold responses diverged"
        flights = _get_json(base, "/stats")["flights"]
        assert flights["started"] == 1, (
            f"single-flight failed: {flights['started']} builds for "
            f"{CLIENTS} identical concurrent requests"
        )
        assert flights["in_flight"] == 0

        # -- phase 2: byte-identity against the CLI --------------------
        cli_bytes = _cli_stdout(
            [
                "analyze",
                CIRCUIT,
                "--backend",
                "packed",
                "--samples",
                str(SAMPLES),
                "--seed",
                "7",
            ]
        )
        assert cold_bodies[0] == cli_bytes, (
            "service response is not byte-identical to the CLI"
        )

        # -- phase 3: warm closed-loop load ----------------------------
        latencies: list[float] = []
        lat_lock = threading.Lock()

        def warm_client() -> None:
            local: list[float] = []
            for _ in range(REQUESTS):
                t0 = time.perf_counter()
                body = _post(base, "/analyze", PAYLOAD)
                local.append(time.perf_counter() - t0)
                assert body == cli_bytes
            with lat_lock:
                latencies.extend(local)

        warm_t0 = time.perf_counter()
        threads = [
            threading.Thread(target=warm_client) for _ in range(CLIENTS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        warm_s = time.perf_counter() - warm_t0

        total = CLIENTS * REQUESTS
        assert len(latencies) == total
        latencies.sort()
        rps = total / warm_s
        p50 = _quantile(latencies, 0.50)
        p99 = _quantile(latencies, 0.99)

        # -- phase 4: the warm phase must have been cache-served -------
        stats = _get_json(base, "/stats")
        hot = stats["hot_tier"]
        hit_rate = hot["hit_rate"]
        assert hit_rate > 0, f"warm hot-tier hit rate is {hit_rate}"
        assert stats["flights"]["started"] == 1, (
            "warm requests triggered fresh builds"
        )

    entry = {
        "name": "serve_load",
        "circuit": CIRCUIT,
        "samples": SAMPLES,
        "clients": CLIENTS,
        "requests_per_client": REQUESTS,
        "cold_burst_s": cold_s,
        "cold_builds": flights["started"],
        "warm_total_requests": total,
        "warm_wall_s": warm_s,
        "rps": rps,
        "p50_s": p50,
        "p99_s": p99,
        "cache_hit_rate": hit_rate,
        "cache_hits": hot["hits"],
        "cache_misses": hot["misses"],
    }
    record_speedup(dict(entry, name="serve_load_summary"))

    payload = {
        "schema": 1,
        "created_unix": time.time(),
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        "load": entry,
        "stats": stats,
    }
    OUT_PATH.parent.mkdir(exist_ok=True)
    OUT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True))
    print(
        f"\n[artifact] {OUT_PATH}\n"
        f"serve load ({CIRCUIT}, {CLIENTS} clients x {REQUESTS} req): "
        f"{rps:.0f} req/s   p50 {p50 * 1e3:.1f} ms   "
        f"p99 {p99 * 1e3:.1f} ms   hit rate {hit_rate:.3f}\n"
    )
