"""Regenerate Table 2: worst-case coverage percentages over the suite.

Runs the full 35-circuit suite by default (override the circuit list
with ``REPRO_CIRCUITS=a,b,c``).  The shape assertions encode the paper's
qualitative claims: coverage is high at n = 1, monotone in n, and the
small classic machines reach 100% within n <= 10 while the dvram-class
circuits do not.
"""

from __future__ import annotations

from repro.experiments.common import suite_circuits
from repro.experiments.table2 import run_table2


def test_table2(benchmark, save_artifact):
    names = suite_circuits()
    result = benchmark.pedantic(
        run_table2, args=(names,), rounds=1, iterations=1
    )
    save_artifact("table2", result.render())

    rows = {r.circuit: r for r in result.rows}
    for row in result.rows:
        assert row.percentages == sorted(row.percentages)
        assert row.percentages[0] >= 50.0  # high coverage at n = 1

    if "lion" in rows:
        assert rows["lion"].full_coverage_n() is not None
    if "dvram" in rows:
        # Paper: dvram's coverage is flat and below 100% through n = 10.
        assert rows["dvram"].full_coverage_n() is None
    if "rie" in rows:
        assert rows["rie"].full_coverage_n() is None
