"""Ablation benches for the design choices called out in DESIGN.md.

1. **State encoding** (binary / gray / one-hot): how the assignment
   shifts the worst-case coverage curve and the nmin tail.
2. **Target collapsing** (equivalence vs dominance): dropping dominated
   targets removes constraints, so every nmin can only grow — verified
   fault-by-fault, quantified in the artifact.
3. **Definition 2 counting** (greedy vs exact maximum): how much the
   paper's greedy counting undercounts on real detection sets.
4. **Multilevel sharing** (common-pair extraction on/off): how much of
   the nmin spread comes from shared logic between cones.
"""

from __future__ import annotations

from repro.bench_suite.registry import get_fsm
from repro.core.definitions import (
    count_detections_def2,
    count_detections_def2_exact,
)
from repro.core.worst_case import WorstCaseAnalysis
from repro.faults.stuck_at import dominance_collapsed_faults
from repro.faults.universe import FaultUniverse
from repro.faultsim.detection import DetectionTable
from repro.fsm.synthesis import synthesize_fsm

CIRCUIT = "bbtas"


def _worst_case(circuit):
    universe = FaultUniverse(circuit)
    return WorstCaseAnalysis(universe.target_table, universe.untargeted_table)


def test_encoding_ablation(benchmark, save_artifact):
    fsm = get_fsm(CIRCUIT)

    def run():
        rows = {}
        for strategy in ("binary", "gray", "onehot"):
            circuit = synthesize_fsm(fsm, encoding=strategy)
            wc = _worst_case(circuit)
            rows[strategy] = (
                len(wc),
                wc.coverage_curve([1, 2, 5, 10]),
                wc.guaranteed_n(),
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"Encoding ablation on {CIRCUIT} (|G|, coverage%, guaranteed n)"]
    for strategy, (num_g, curve, g_n) in rows.items():
        cells = " ".join(f"{p:6.2f}" for p in curve)
        lines.append(f"  {strategy:>7}: |G|={num_g:6d}  {cells}  n*={g_n}")
    save_artifact("ablation_encoding", "\n".join(lines) + "\n")
    # One-hot uses more state bits -> a different (usually larger) G.
    assert rows["onehot"][0] != rows["binary"][0]


def test_collapse_ablation(benchmark, save_artifact):
    from repro.bench_suite.registry import get_circuit

    circuit = get_circuit(CIRCUIT)
    universe = FaultUniverse(circuit)

    def run():
        eq_wc = WorstCaseAnalysis(
            universe.target_table, universe.untargeted_table
        )
        dom_faults = dominance_collapsed_faults(circuit)
        dom_table = DetectionTable.for_stuck_at(circuit, faults=dom_faults)
        dom_wc = WorstCaseAnalysis(dom_table, universe.untargeted_table)
        return eq_wc, dom_wc

    eq_wc, dom_wc = benchmark.pedantic(run, rounds=1, iterations=1)
    increased = 0
    for a, b in zip(eq_wc.records, dom_wc.records):
        a_val = a.nmin if a.nmin is not None else 10**9
        b_val = b.nmin if b.nmin is not None else 10**9
        assert b_val >= a_val, "dominance collapse tightened a guarantee?"
        increased += b_val > a_val
    text = (
        f"Collapse ablation on {CIRCUIT}:\n"
        f"  equivalence targets: {len(eq_wc.target_table)}\n"
        f"  dominance targets:   {len(dom_wc.target_table)}\n"
        f"  faults whose nmin grew when dropping dominated targets: "
        f"{increased} / {len(eq_wc)}\n"
        f"  guaranteed n: {eq_wc.guaranteed_n()} -> {dom_wc.guaranteed_n()}\n"
    )
    save_artifact("ablation_collapse", text)


def test_def2_greedy_vs_exact(benchmark, save_artifact):
    from repro.bench_suite.example import paper_example

    circuit = paper_example()
    table = DetectionTable.for_stuck_at(circuit)

    def run():
        gaps = []
        for i, fault in enumerate(table.faults):
            sig = table.signatures[i]
            if not sig:
                continue
            vecs = table.vectors(i)
            greedy = count_detections_def2(circuit, fault, sig, vecs)
            exact = count_detections_def2_exact(circuit, fault, sig, vecs)
            gaps.append((table.fault_name(i), greedy, exact))
        return gaps

    gaps = benchmark.pedantic(run, rounds=1, iterations=1)
    undercount = [g for g in gaps if g[1] < g[2]]
    lines = ["Definition 2 greedy vs exact (example circuit)"]
    for name, greedy, exact in gaps:
        marker = "  <-- greedy undercounts" if greedy < exact else ""
        lines.append(f"  {name:>6}: greedy={greedy} exact={exact}{marker}")
    lines.append(f"  undercounted faults: {len(undercount)}/{len(gaps)}")
    save_artifact("ablation_def2_exact", "\n".join(lines) + "\n")
    for _name, greedy, exact in gaps:
        assert greedy <= exact


def test_sharing_ablation(benchmark, save_artifact):
    fsm = get_fsm(CIRCUIT)

    def run():
        rows = {}
        for share in (True, False):
            circuit = synthesize_fsm(fsm, share_logic=share)
            wc = _worst_case(circuit)
            rows[share] = (
                circuit.num_gates,
                len(wc),
                wc.coverage_curve([1, 2, 5, 10]),
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"Multilevel-sharing ablation on {CIRCUIT}"]
    for share, (gates, num_g, curve) in rows.items():
        cells = " ".join(f"{p:6.2f}" for p in curve)
        label = "shared" if share else "flat"
        lines.append(f"  {label:>6}: gates={gates:4d} |G|={num_g:6d}  {cells}")
    save_artifact("ablation_sharing", "\n".join(lines) + "\n")
    # Sharing shrinks the netlist (that is its point).
    assert rows[True][0] <= rows[False][0]
