"""Regenerate Table 5: average-case p(10, g) histograms (Definition 1).

Default K = 200 random test sets per circuit (paper: 10 000); raise with
``REPRO_K`` for tighter estimates — the bucket structure is stable from
K ≈ 100 up.  Circuits default to the paper's Table 5 list (only those
with nmin >= 11 faults produce rows).
"""

from __future__ import annotations

from conftest import env_int

from repro.experiments.common import PAPER_TABLE5_CIRCUITS, suite_circuits
from repro.experiments.table5 import run_table5


def test_table5(benchmark, save_artifact):
    names = suite_circuits(PAPER_TABLE5_CIRCUITS)
    k = env_int("REPRO_K", 200)
    result = benchmark.pedantic(
        run_table5, args=(names,), kwargs={"k": k, "seed": 2005},
        rounds=1, iterations=1,
    )
    save_artifact("table5", result.render())

    assert result.rows, "no circuit produced a Table 5 row"
    for row in result.rows:
        # Histogram counts grow toward lower thresholds and saturate.
        assert row.histogram == sorted(row.histogram)
        assert row.histogram[-1] == row.num_faults
        # Paper: many hard faults still have high detection probability.
        at_09 = row.histogram[1]
        assert at_09 >= row.num_faults * 0.2, row.circuit
