"""Straggler benchmark for the TCP queue transport.

``test_steal_rescues_straggler`` is the acceptance benchmark of the
work-stealing scheduler: it simulates a heterogeneous fleet — one
straggler worker whose every build is slowed by
``REPRO_BENCH_DIST_DELAY`` seconds (the ``REPRO_STEAL_DELAY`` hook,
driven here through ``TcpWorker(build_delay=...)``) next to a healthy
worker — and measures the makespan of the same sharded table build
twice against a live broker:

1. ``steal=off`` — the run can finish no sooner than the straggler
   releases its last shard; the makespan absorbs the full delay;
2. ``steal=on`` — once the straggler's lease goes stale the broker
   duplicates its shard to the idle healthy worker, whose completion
   wins; the makespan collapses to roughly the healthy build time.

Both runs must be bit-identical to the inline build (work stealing is
an idempotent duplication, not a fork), the steal run must record at
least one steal, and the off/on makespan ratio must clear
``REPRO_BENCH_MIN_STEAL_SPEEDUP`` (default 1.3; waived on single-core
runners, where wall-clock ratios are noise).  The numbers land in
``benchmarks/out/BENCH_dist.json`` so CI accumulates a distributed-
performance trajectory alongside ``BENCH_faultsim.json``.

Environment knobs (CI smoke uses the defaults):
``REPRO_BENCH_DIST_SHARDS`` (default 6) shards per table,
``REPRO_BENCH_DIST_DELAY`` (default 1.0) straggler seconds per build,
``REPRO_BENCH_MIN_STEAL_SPEEDUP`` (default 1.3) the soft floor.
"""

from __future__ import annotations

import json
import os
import platform
import threading
import time
from pathlib import Path

from conftest import env_int

OUT_PATH = Path(__file__).parent / "out" / "BENCH_dist.json"

SHARDS = env_int("REPRO_BENCH_DIST_SHARDS", 6)
DELAY = float(os.environ.get("REPRO_BENCH_DIST_DELAY") or 1.0)
MIN_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_MIN_STEAL_SPEEDUP") or 1.3
)


def _fleet_build(circuit, base, *, steal: bool) -> dict:
    """One sharded build against a fresh broker + two-worker fleet."""
    from repro.parallel import (
        BackgroundBroker,
        ParallelBackend,
        TcpExecutor,
        TcpWorker,
    )

    with BackgroundBroker(steal=steal, steal_after=0.1) as broker:
        # Worker ids sort straggler-first so the broker's deterministic
        # idle ordering hands it the first shard of every submit.
        straggler = TcpWorker(
            broker=broker.address,
            worker_id="a-straggler",
            build_delay=DELAY,
            use_cache=False,
        )
        healthy = TcpWorker(
            broker=broker.address,
            worker_id="b-healthy",
            use_cache=False,
        )
        workers = [straggler, healthy]
        fleet_stats: dict[str, dict] = {}
        threads = [
            threading.Thread(
                target=lambda w=w: fleet_stats.update(
                    {w.worker_id: w.serve(idle_exit=10.0)}
                ),
                daemon=True,
            )
            for w in workers
        ]
        for thread in threads:
            thread.start()
        backend = ParallelBackend(
            base=base,
            shards=SHARDS,
            use_cache=False,
            executor=TcpExecutor(
                broker=broker.address, wait_timeout=600.0
            ),
        )
        from repro.faults.universe import FaultUniverse

        t0 = time.perf_counter()
        universe = FaultUniverse(circuit, backend=backend)
        signatures = (
            universe.target_table.signatures,
            universe.untargeted_table.signatures,
        )
        makespan = time.perf_counter() - t0
        counters = broker.stats()["counters"]
        for worker in workers:
            worker.stop()
        for thread in threads:
            thread.join(timeout=30)
    return {
        "steal": steal,
        "makespan_s": makespan,
        "signatures": signatures,
        "counters": counters,
        "workers": fleet_stats,
    }


def test_steal_rescues_straggler(record_speedup):
    from repro.bench_suite.randlogic import random_circuit
    from repro.faults.universe import FaultUniverse
    from repro.faultsim.backends import ExhaustiveBackend

    circuit = random_circuit(61, num_inputs=6, num_gates=14)
    base = ExhaustiveBackend()
    inline = FaultUniverse(circuit, backend=base)
    expected = (
        inline.target_table.signatures,
        inline.untargeted_table.signatures,
    )

    off = _fleet_build(circuit, base, steal=False)
    on = _fleet_build(circuit, base, steal=True)

    # Correctness first: stealing duplicates work, it never forks it.
    assert off["signatures"] == expected, (
        "steal=off fleet build diverged from the inline build"
    )
    assert on["signatures"] == expected, (
        "steal=on fleet build diverged from the inline build"
    )
    assert off["counters"]["steals"] == 0
    assert on["counters"]["steals"] >= 1, (
        "the straggler was never stolen from "
        f"(counters: {on['counters']})"
    )

    speedup = off["makespan_s"] / on["makespan_s"]
    single_core = (os.cpu_count() or 1) < 2
    if not single_core:
        assert speedup >= MIN_SPEEDUP, (
            f"steal speedup {speedup:.2f}x is below the "
            f"{MIN_SPEEDUP}x floor (off {off['makespan_s']:.2f}s, "
            f"on {on['makespan_s']:.2f}s)"
        )

    entry = {
        "name": "dist_steal",
        "circuit": circuit.name,
        "shards_per_table": SHARDS,
        "straggler_delay_s": DELAY,
        "makespan_off_s": off["makespan_s"],
        "makespan_on_s": on["makespan_s"],
        "speedup": speedup,
        "min_speedup": MIN_SPEEDUP,
        "floor_waived_single_core": single_core,
        "steals": on["counters"]["steals"],
        "steal_completions": on["counters"]["steal_completions"],
        "duplicates": on["counters"]["duplicates"],
    }
    record_speedup(entry)

    payload = {
        "schema": 1,
        "created_unix": time.time(),
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        "straggler": entry,
        "runs": [
            {k: v for k, v in run.items() if k != "signatures"}
            for run in (off, on)
        ],
    }
    OUT_PATH.parent.mkdir(exist_ok=True)
    OUT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True))
    print(
        f"\n[artifact] {OUT_PATH}\n"
        f"straggler fleet ({circuit.name}, delay {DELAY:.1f}s): "
        f"steal off {off['makespan_s']:.2f}s -> "
        f"on {on['makespan_s']:.2f}s   "
        f"speedup {speedup:.2f}x   steals {on['counters']['steals']}\n"
    )
