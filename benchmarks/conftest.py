"""Shared infrastructure for the benchmark harness.

Every ``bench_table*.py`` / ``bench_figure*.py`` regenerates one paper
artifact: it times the experiment once (``benchmark.pedantic`` with a
single round — these are minutes-scale analyses, not microbenchmarks)
and writes the rendered table to ``benchmarks/out/<name>.txt`` so the
rows can be compared against the paper (see EXPERIMENTS.md).

Heavyweight parameters honour the same environment overrides as the
experiment layer: ``REPRO_K``, ``REPRO_NMAX``, ``REPRO_CIRCUITS``.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def artifact_dir() -> Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture
def save_artifact(artifact_dir):
    """Write a rendered table/figure to benchmarks/out/<name>.txt."""

    def save(name: str, text: str) -> None:
        path = artifact_dir / f"{name}.txt"
        path.write_text(text)
        sys.stdout.write(f"\n[artifact] {path}\n{text}\n")

    return save


def env_int(var: str, default: int) -> int:
    raw = os.environ.get(var)
    return int(raw) if raw else default
