"""Shared infrastructure for the benchmark harness.

Every ``bench_table*.py`` / ``bench_figure*.py`` regenerates one paper
artifact: it times the experiment once (``benchmark.pedantic`` with a
single round — these are minutes-scale analyses, not microbenchmarks)
and writes the rendered table to ``benchmarks/out/<name>.txt`` so the
rows can be compared against the paper (see EXPERIMENTS.md).

At session end the harness also writes a machine-readable perf
trajectory to ``benchmarks/out/BENCH_faultsim.json``: per-bench wall
times harvested from pytest-benchmark (when enabled) plus the speedup
comparisons the acceptance benches record through the
``record_speedup`` fixture (packed-vs-bigint nmin scan, parallel-vs-
single-process table builds).  CI uploads the file as an artifact, so
the trajectory accumulates across commits.

Heavyweight parameters honour the same environment overrides as the
experiment layer: ``REPRO_K``, ``REPRO_NMAX``, ``REPRO_CIRCUITS``.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

OUT_DIR = Path(__file__).parent / "out"
TRAJECTORY_NAME = "BENCH_faultsim.json"

#: Session accumulator behind :func:`record_speedup`; written to the
#: trajectory file by ``pytest_sessionfinish``.
_SPEEDUPS: list[dict] = []


@pytest.fixture(scope="session")
def artifact_dir() -> Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture
def save_artifact(artifact_dir):
    """Write a rendered table/figure to benchmarks/out/<name>.txt."""

    def save(name: str, text: str) -> None:
        path = artifact_dir / f"{name}.txt"
        path.write_text(text)
        sys.stdout.write(f"\n[artifact] {path}\n{text}\n")

    return save


@pytest.fixture
def record_speedup():
    """Append one speedup-comparison entry to the perf trajectory.

    Entries are free-form dicts (``name`` plus whatever timings the
    bench measured); they land in the ``speedups`` array of
    ``BENCH_faultsim.json`` at session end.
    """

    def record(entry: dict) -> None:
        _SPEEDUPS.append(dict(entry))

    return record


def _harvested_benchmarks(session) -> list[dict]:
    """Per-bench wall times from pytest-benchmark (empty when disabled)."""
    bench_session = getattr(session.config, "_benchmarksession", None)
    out: list[dict] = []
    if bench_session is None:
        return out
    for bench in getattr(bench_session, "benchmarks", []):
        stats = getattr(bench, "stats", None)
        if stats is None:
            continue
        try:
            out.append(
                {
                    "name": bench.fullname,
                    "mean_s": stats.mean,
                    "min_s": stats.min,
                    "max_s": stats.max,
                    "stddev_s": stats.stddev,
                    "rounds": stats.rounds,
                }
            )
        except (AttributeError, TypeError, ZeroDivisionError):
            continue
    return out


def pytest_sessionfinish(session, exitstatus):
    """Emit the machine-readable perf trajectory (best effort)."""
    try:
        payload = {
            "schema": 1,
            "created_unix": time.time(),
            "machine": {
                "python": platform.python_version(),
                "platform": platform.platform(),
                "cpu_count": os.cpu_count(),
            },
            "exit_status": int(exitstatus),
            "benches": _harvested_benchmarks(session),
            "speedups": list(_SPEEDUPS),
        }
        if not payload["benches"] and not payload["speedups"]:
            return  # nothing measured (e.g. collect-only / unrelated run)
        OUT_DIR.mkdir(exist_ok=True)
        path = OUT_DIR / TRAJECTORY_NAME
        path.write_text(json.dumps(payload, indent=2, sort_keys=True))
        sys.stdout.write(f"\n[artifact] {path}\n")
    except Exception as exc:  # noqa: BLE001 - never fail the session over telemetry
        sys.stderr.write(f"[bench-trajectory] skipped: {exc}\n")


def env_int(var: str, default: int) -> int:
    raw = os.environ.get(var)
    return int(raw) if raw else default
