"""Regenerate Table 1 (example-circuit overlap analysis) and time it.

This is the paper's fully-pinned artifact: the bench asserts the exact
published values besides timing the analysis.
"""

from __future__ import annotations

from repro.experiments.table1 import run_table1


def bench_run():
    return run_table1()


def test_table1(benchmark, save_artifact):
    result = benchmark.pedantic(bench_run, rounds=3, iterations=1)
    save_artifact("table1", result.render())
    assert result.nmin_g == 3
    assert result.g_vectors == [6, 7]
    assert [r.index for r in result.rows] == [0, 1, 3, 9, 11, 12, 14]
    assert [r.nmin for r in result.rows] == [3, 5, 5, 4, 11, 3, 11]
