"""Regenerate Table 6: Definition 1 vs Definition 2 histograms.

Definition 2 runs 3-valued ``tij`` fault simulations inside Procedure 1
(batched dual-rail, but still the dominant cost), so the bench defaults
to K = 50 test sets on three mid-size tail circuits.  Raise ``REPRO_K``
and widen ``REPRO_CIRCUITS`` to approach the paper's K = 1000 setting.
"""

from __future__ import annotations

from conftest import env_int

from repro.experiments.common import suite_circuits
from repro.experiments.table6 import run_table6

# keyb and cse carry the suite's largest nmin >= 11 populations below
# the dvram class, so the Definition 1 / Definition 2 contrast is
# actually visible; bbara is the cheap sanity row.
DEFAULT_CIRCUITS = ("bbara", "keyb", "cse")


def test_table6(benchmark, save_artifact):
    names = suite_circuits(DEFAULT_CIRCUITS)
    k = env_int("REPRO_K", 40)
    result = benchmark.pedantic(
        run_table6, args=(names,), kwargs={"k": k, "seed": 2005},
        rounds=1, iterations=1,
    )
    save_artifact("table6", result.render())

    assert result.rows, "no circuit produced a Table 6 row"
    for row in result.rows:
        assert len(row.def1.histogram) == len(row.def2.histogram) == 11
        assert row.def1.histogram[-1] == row.def2.histogram[-1]
        # Paper's claim, in aggregate: Definition 2 shifts probability
        # mass upward.  Compare the histogram sums (cumulative counts
        # over thresholds — higher = more mass at high probabilities).
        assert sum(row.def2.histogram) >= sum(row.def1.histogram) - max(
            2, row.num_faults // 10
        ), row.circuit
