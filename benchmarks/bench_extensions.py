"""Extension benches: beyond the paper's published experiments.

1. **Gate-exhaustive untargeted model** — the paper's analysis is
   model-agnostic; re-run the worst case with input-pattern faults as
   ``G`` and compare the coverage shape against the bridging model.
2. **Escape curve** — Section 4 notes the detection probabilities yield
   escape estimates; produce the expected-escapes-vs-n curve and verify
   the paper's conclusion (raising n has fast-diminishing returns while
   a worst-case escape risk remains).
3. **Partitioned analysis** — Section 4's scaling route, timed on a
   suite circuit.
"""

from __future__ import annotations

from repro.core.average_case import AverageCaseAnalysis
from repro.core.escape import EscapeAnalysis
from repro.core.partition import PartitionedAnalysis
from repro.core.procedure1 import build_random_ndetection_sets
from repro.core.worst_case import WorstCaseAnalysis
from repro.experiments.common import get_universe, get_worst_case
from repro.faults.cell_aware import gate_exhaustive_table

N_COLUMNS = (1, 2, 3, 4, 5, 10)
CIRCUITS = ("bbtas", "beecount", "bbara")


def test_gate_exhaustive_model(benchmark, save_artifact):
    def run():
        rows = {}
        for name in CIRCUITS:
            universe = get_universe(name)
            bridging_wc = get_worst_case(name)
            ge_table = gate_exhaustive_table(
                universe.circuit, base_signatures=universe.base_signatures
            )
            ge_wc = WorstCaseAnalysis(universe.target_table, ge_table)
            rows[name] = (
                (len(bridging_wc), bridging_wc.coverage_curve(list(N_COLUMNS))),
                (len(ge_wc), ge_wc.coverage_curve(list(N_COLUMNS))),
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Worst-case coverage: bridging vs gate-exhaustive G"]
    for name, (bridging, gate_ex) in rows.items():
        for label, (count, curve) in (
            ("bridging", bridging),
            ("gate-exh", gate_ex),
        ):
            cells = " ".join(f"{p:6.2f}" for p in curve)
            lines.append(f"  {name:>9} {label:>9} |G|={count:6d}  {cells}")
    save_artifact("extension_gate_exhaustive", "\n".join(lines) + "\n")
    for name, (bridging, gate_ex) in rows.items():
        # Both models show the paper's shape: high n=1 coverage, monotone.
        for _count, curve in (bridging, gate_ex):
            assert curve == sorted(curve)
            assert curve[0] > 50.0


def test_escape_curve(benchmark, save_artifact):
    name = "bbara"

    def run():
        universe = get_universe(name)
        worst = get_worst_case(name)
        family = build_random_ndetection_sets(
            universe.target_table, n_max=10, num_sets=100, seed=2005
        )
        avg = AverageCaseAnalysis(family, universe.untargeted_table)
        return EscapeAnalysis(worst, avg)

    escape = benchmark.pedantic(run, rounds=1, iterations=1)
    save_artifact(
        "extension_escape", f"Escape curve for {name}\n" + escape.render() + "\n"
    )
    curve = escape.curve()
    # Expected escapes fall monotonically...
    values = [rep.expected_escapes for rep in curve]
    assert values == sorted(values, reverse=True)
    # ...but the marginal benefit of raising n collapses (the paper's
    # conclusion): the last step buys far less than the first.
    marginal = escape.marginal_benefit()
    assert marginal[-1] <= marginal[0]


def test_partitioned_analysis(benchmark, save_artifact):
    from repro.bench_suite.registry import get_circuit

    circuit = get_circuit("mark1")
    analysis = benchmark.pedantic(
        PartitionedAnalysis, args=(circuit,), kwargs={"max_inputs": 9},
        rounds=1, iterations=1,
    )
    summary = analysis.summary()
    text = "Partitioned analysis of mark1 (max 9 inputs)\n" + "\n".join(
        f"  {key}: {value}" for key, value in summary.items()
    )
    save_artifact("extension_partition", text + "\n")
    assert summary["cones"] >= 1
    assert 0 < summary["site_coverage"] <= 1
