"""Regenerate Table 3: faults needing large n, over the suite.

Shape assertions: only tail circuits appear; the nested threshold counts
are consistent; the heavy (dvram-class) circuits have nmin >= 100 faults
while the keyb-class circuits stop at nmin >= 20 — the paper's split.
"""

from __future__ import annotations

from repro.experiments.common import suite_circuits
from repro.experiments.table3 import run_table3

HEAVY = {"dvram", "fetch", "log", "rie", "s1a"}


def test_table3(benchmark, save_artifact):
    names = suite_circuits()
    result = benchmark.pedantic(
        run_table3, args=(names,), rounds=1, iterations=1
    )
    save_artifact("table3", result.render())

    reported = {r.circuit for r in result.rows}
    for row in result.rows:
        ge100, ge20, ge11 = row.counts
        assert ge100 <= ge20 <= ge11
        assert ge11 >= 1

    if HEAVY <= set(names):
        heavy_reported = HEAVY & reported
        assert heavy_reported, "no heavy-tail circuit reported"
        for row in result.rows:
            if row.circuit in HEAVY:
                assert row.counts[0] > 0, (
                    f"{row.circuit} lost its nmin >= 100 tail"
                )
