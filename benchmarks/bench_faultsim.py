"""Performance benchmarks for the analysis substrate.

Microbenchmarks (real timing statistics, multiple rounds) for the four
hot paths behind every table: exhaustive signatures, detection-table
construction for both fault models, the worst-case nmin scan, and
Procedure 1 throughput.
"""

from __future__ import annotations

import pytest

from repro.bench_suite.registry import get_circuit
from repro.core.procedure1 import build_random_ndetection_sets
from repro.core.worst_case import WorstCaseAnalysis
from repro.faultsim.detection import DetectionTable
from repro.simulation.exhaustive import line_signatures

CIRCUIT = "beecount"  # mid-size: 60 gates, 6 inputs


@pytest.fixture(scope="module")
def circuit():
    return get_circuit(CIRCUIT)


@pytest.fixture(scope="module")
def tables(circuit):
    targets = DetectionTable.for_stuck_at(circuit)
    untargeted = DetectionTable.for_bridging(circuit)
    return targets, untargeted


def test_line_signatures(benchmark, circuit):
    sigs = benchmark(line_signatures, circuit)
    assert len(sigs) == len(circuit.lines)


def test_stuck_at_table(benchmark, circuit):
    table = benchmark(DetectionTable.for_stuck_at, circuit)
    assert len(table) > 0


def test_bridging_table(benchmark, circuit):
    table = benchmark(DetectionTable.for_bridging, circuit)
    assert len(table) > 0


def test_worst_case_scan(benchmark, tables):
    targets, untargeted = tables
    analysis = benchmark(WorstCaseAnalysis, targets, untargeted)
    assert len(analysis) == len(untargeted)


def test_procedure1_def1(benchmark, tables):
    targets, _ = tables
    family = benchmark.pedantic(
        build_random_ndetection_sets,
        args=(targets,),
        kwargs={"n_max": 5, "num_sets": 50, "seed": 1},
        rounds=3,
        iterations=1,
    )
    assert family.num_sets == 50


def test_procedure1_def2(benchmark, tables):
    targets, _ = tables
    family = benchmark.pedantic(
        build_random_ndetection_sets,
        args=(targets,),
        kwargs={"n_max": 3, "num_sets": 10, "seed": 1, "counting": "def2"},
        rounds=1,
        iterations=1,
    )
    assert family.num_sets == 10
