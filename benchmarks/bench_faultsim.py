"""Performance benchmarks for the analysis substrate.

Microbenchmarks (real timing statistics, multiple rounds) for the hot
paths behind every table: exhaustive signatures, detection-table
construction for both fault models (exhaustive and sampled-U backends),
the worst-case nmin scan, and Procedure 1 throughput.

``REPRO_BENCH_CIRCUIT`` overrides the benchmark circuit (CI smoke runs
use a small one); ``REPRO_BENCH_SAMPLES`` sizes the sampled backend's
draw.
"""

from __future__ import annotations

import os

import pytest

from repro.bench_suite.registry import get_circuit
from repro.core.procedure1 import build_random_ndetection_sets
from repro.core.worst_case import WorstCaseAnalysis
from repro.faultsim.backends import SampledBackend
from repro.faultsim.detection import DetectionTable
from repro.simulation.exhaustive import line_signatures

# mid-size default: 60 gates, 6 inputs
CIRCUIT = os.environ.get("REPRO_BENCH_CIRCUIT", "beecount")
SAMPLES = int(os.environ.get("REPRO_BENCH_SAMPLES", "1024"))


@pytest.fixture(scope="module")
def circuit():
    return get_circuit(CIRCUIT)


@pytest.fixture(scope="module")
def tables(circuit):
    targets = DetectionTable.for_stuck_at(circuit)
    untargeted = DetectionTable.for_bridging(circuit)
    return targets, untargeted


def test_line_signatures(benchmark, circuit):
    sigs = benchmark(line_signatures, circuit)
    assert len(sigs) == len(circuit.lines)


def test_stuck_at_table(benchmark, circuit):
    table = benchmark(DetectionTable.for_stuck_at, circuit)
    assert len(table) > 0


def test_bridging_table(benchmark, circuit):
    table = benchmark(DetectionTable.for_bridging, circuit)
    assert len(table) > 0


@pytest.fixture(scope="module")
def sampled_backend(circuit):
    # Full-coverage draws canonicalize to exhaustive; stay strictly below.
    k = min(SAMPLES, (1 << circuit.num_inputs) // 2)
    return SampledBackend(max(1, k), seed=1)


def test_sampled_stuck_at_table(benchmark, circuit, sampled_backend):
    table = benchmark(sampled_backend.build_stuck_at, circuit)
    assert len(table) > 0


def test_sampled_bridging_table(benchmark, circuit, sampled_backend):
    table = benchmark(sampled_backend.build_bridging, circuit)
    assert table.universe.size == sampled_backend.samples


def test_worst_case_scan(benchmark, tables):
    targets, untargeted = tables
    analysis = benchmark(WorstCaseAnalysis, targets, untargeted)
    assert len(analysis) == len(untargeted)


def test_procedure1_def1(benchmark, tables):
    targets, _ = tables
    family = benchmark.pedantic(
        build_random_ndetection_sets,
        args=(targets,),
        kwargs={"n_max": 5, "num_sets": 50, "seed": 1},
        rounds=3,
        iterations=1,
    )
    assert family.num_sets == 50


def test_procedure1_def2(benchmark, tables):
    targets, _ = tables
    family = benchmark.pedantic(
        build_random_ndetection_sets,
        args=(targets,),
        kwargs={"n_max": 3, "num_sets": 10, "seed": 1, "counting": "def2"},
        rounds=1,
        iterations=1,
    )
    assert family.num_sets == 10
