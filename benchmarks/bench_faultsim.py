"""Performance benchmarks for the analysis substrate.

Microbenchmarks (real timing statistics, multiple rounds) for the hot
paths behind every table: exhaustive signatures, detection-table
construction for both fault models (exhaustive and sampled-U backends),
the worst-case nmin scan (big-int and numpy-packed), and Procedure 1
throughput.  ``test_packed_nmin_scan_speedup`` is the acceptance
benchmark of the packed backend: it times the big-int and packed nmin
scans on the wide sampled circuits, prints the comparison, and asserts
a minimum aggregate speedup.

``REPRO_BENCH_CIRCUIT`` overrides the benchmark circuit (CI smoke runs
use a small one); ``REPRO_BENCH_SAMPLES`` sizes the sampled backend's
draw.  The packed-speedup comparison has its own knobs:
``REPRO_BENCH_WIDE_CIRCUITS`` (default ``wide28,wide32,wide40``),
``REPRO_BENCH_WIDE_SAMPLES`` (default 128), and
``REPRO_BENCH_MIN_SPEEDUP`` (default 5.0; CI smoke on shared runners
lowers it to avoid timing flakes while still recording the numbers).

``test_parallel_build_speedup`` is the acceptance benchmark of the
sharded multiprocessing subsystem: it times single-process vs
``jobs=2`` / ``jobs=4`` detection-table builds (shard cache disabled,
so real construction is measured) on the wide sampled circuits, proves
the tables bit-identical, records the numbers into the
``BENCH_faultsim.json`` trajectory, and asserts the aggregate speedup
at the highest jobs value clears ``REPRO_BENCH_MIN_PARALLEL_SPEEDUP``
(default 1.5; auto-waived — but still recorded — on single-core
machines, where a process pool cannot physically speed anything up).
``REPRO_BENCH_PARALLEL_SAMPLES`` (default 512) sizes the builds,
``REPRO_BENCH_PARALLEL_JOBS`` (default ``2,4``) the pool sweep.

``test_queue_executor_build_speedup`` is the acceptance benchmark of
the distributed work-queue executor: it launches two real ``repro
worker`` subprocesses against a temp queue directory and times the
wide-circuit table builds single-process vs local pool vs queue,
proving the tables bit-identical and recording all three wall times
into ``BENCH_faultsim.json``.  The aggregate queue-vs-single floor is
``REPRO_BENCH_MIN_QUEUE_SPEEDUP`` (default: the parallel floor),
waived — but still recorded — on single-core machines;
``REPRO_BENCH_QUEUE_WORKERS`` (default 2) sizes the worker fleet.

``test_ppsfp_build_speedup`` is the acceptance benchmark of the
word-parallel (PPSFP) simulation kernel: with faults and fault-free
base signatures precomputed, it times the detection-table builds for
both fault models on the wide sampled circuits under ``REPRO_PPSFP=0``
(big-int cone resimulation) and ``REPRO_PPSFP=1`` (the numpy kernel),
proves the tables bit-identical, records the per-circuit and aggregate
numbers into ``BENCH_faultsim.json``, and asserts the aggregate clears
``REPRO_BENCH_MIN_PPSFP_SPEEDUP`` (default 5.0; the dev-box aggregate
is ~10x — CI smoke on shared runners relaxes the floor while still
recording the measurement).

``test_adaptive_sample_efficiency`` is the acceptance benchmark of the
adaptive sampling controller: on each wide circuit (bridging-heavy
universes — thousands of four-way bridging faults against hundreds of
stuck-at targets) it runs the stratified adaptive controller to a fixed
relative half-width target and records how many vectors it simulated,
against two fixed-``K`` baselines: the restart-based geometric search
under the same stratified rule (what a non-incremental driver pays:
``K0 + 2 K0 + 4 K0 + …``, measured) and the uniform draw certifying
the *same focus faults* to the same half-width (analytic:
``K ≈ z²(1-p)/(p·target²)`` from the certified estimates — for
rare-activation faults orders of magnitude beyond any practical draw).
A uniform-growth sweep under the uniform-mode rule is also recorded
for context.  It asserts the adaptive run met the target and strictly
beat both baselines.  ``REPRO_BENCH_ADAPTIVE_TARGET`` (default 0.1)
sets the target, ``REPRO_BENCH_ADAPTIVE_BUDGET`` (default 32768) the
adaptive budget, ``REPRO_BENCH_ADAPTIVE_UNIFORM_CAP`` (default 4096)
the context sweep cap.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.bench_suite.registry import get_circuit
from repro.core.procedure1 import build_random_ndetection_sets
from repro.core.worst_case import WorstCaseAnalysis
from repro.faults.universe import FaultUniverse
from repro.faultsim.backends import PackedBackend, SampledBackend
from repro.faultsim.detection import DetectionTable
from repro.parallel import ParallelBackend
from repro.simulation.exhaustive import line_signatures

# mid-size default: 60 gates, 6 inputs
CIRCUIT = os.environ.get("REPRO_BENCH_CIRCUIT", "beecount")
SAMPLES = int(os.environ.get("REPRO_BENCH_SAMPLES", "1024"))
WIDE_CIRCUITS = [
    name.strip()
    for name in os.environ.get(
        "REPRO_BENCH_WIDE_CIRCUITS", "wide28,wide32,wide40"
    ).split(",")
    if name.strip()
]
WIDE_SAMPLES = int(os.environ.get("REPRO_BENCH_WIDE_SAMPLES", "128"))
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "5.0"))
#: Per-circuit floor: by default packed must never be slower; CI smoke on
#: shared runners can relax it below 1.0 alongside MIN_SPEEDUP.
MIN_CIRCUIT_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_MIN_CIRCUIT_SPEEDUP", "1.0")
)
#: Parallel-build acceptance knobs (see module docstring).
PARALLEL_SAMPLES = int(
    os.environ.get("REPRO_BENCH_PARALLEL_SAMPLES", "512")
)
PARALLEL_JOBS = [
    int(j)
    for j in os.environ.get("REPRO_BENCH_PARALLEL_JOBS", "2,4").split(",")
    if j.strip()
]
MIN_PARALLEL_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_MIN_PARALLEL_SPEEDUP", "1.5")
)
#: Queue-executor acceptance floor (queue vs single-process, 2 local
#: workers); defaults to the pool floor, waived on single-core runners
#: exactly like it.  CI on shared runners relaxes it independently —
#: the filesystem queue adds publish/poll latency a loaded runner can
#: amplify — while the measured numbers still land in the trajectory.
MIN_QUEUE_SPEEDUP = float(
    os.environ.get(
        "REPRO_BENCH_MIN_QUEUE_SPEEDUP",
        os.environ.get("REPRO_BENCH_MIN_PARALLEL_SPEEDUP", "1.5"),
    )
)
QUEUE_WORKERS = int(os.environ.get("REPRO_BENCH_QUEUE_WORKERS", "2"))
#: PPSFP kernel acceptance floor (word-parallel vs big-int builds over
#: the wide circuits at ``WIDE_SAMPLES``; the dev-box measurement is
#: ~10x aggregate).  CI smoke on shared runners relaxes it while the
#: measured numbers still land in the trajectory.
MIN_PPSFP_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_MIN_PPSFP_SPEEDUP", "5.0")
)
#: Adaptive sample-efficiency knobs (see module docstring).
ADAPTIVE_TARGET = float(
    os.environ.get("REPRO_BENCH_ADAPTIVE_TARGET", "0.1")
)
ADAPTIVE_BUDGET = int(
    os.environ.get("REPRO_BENCH_ADAPTIVE_BUDGET", str(1 << 15))
)
#: The uniform baseline sweep stops here; for rare-activation faults it
#: cannot meet the relative target at any practical K, so the recorded
#: requirement is extrapolated from the achieved half-width.
ADAPTIVE_UNIFORM_CAP = int(
    os.environ.get("REPRO_BENCH_ADAPTIVE_UNIFORM_CAP", str(1 << 12))
)


@pytest.fixture(scope="module")
def circuit():
    return get_circuit(CIRCUIT)


@pytest.fixture(scope="module")
def tables(circuit):
    targets = DetectionTable.for_stuck_at(circuit)
    untargeted = DetectionTable.for_bridging(circuit)
    return targets, untargeted


def test_line_signatures(benchmark, circuit):
    sigs = benchmark(line_signatures, circuit)
    assert len(sigs) == len(circuit.lines)


def test_stuck_at_table(benchmark, circuit):
    table = benchmark(DetectionTable.for_stuck_at, circuit)
    assert len(table) > 0


def test_bridging_table(benchmark, circuit):
    table = benchmark(DetectionTable.for_bridging, circuit)
    assert len(table) > 0


@pytest.fixture(scope="module")
def sampled_backend(circuit):
    # Full-coverage draws canonicalize to exhaustive; stay strictly below.
    k = min(SAMPLES, (1 << circuit.num_inputs) // 2)
    return SampledBackend(max(1, k), seed=1)


def test_sampled_stuck_at_table(benchmark, circuit, sampled_backend):
    table = benchmark(sampled_backend.build_stuck_at, circuit)
    assert len(table) > 0


def test_sampled_bridging_table(benchmark, circuit, sampled_backend):
    table = benchmark(sampled_backend.build_bridging, circuit)
    assert table.universe.size == sampled_backend.samples


def test_worst_case_scan(benchmark, tables):
    targets, untargeted = tables
    analysis = benchmark(WorstCaseAnalysis, targets, untargeted)
    assert len(analysis) == len(untargeted)


@pytest.fixture(scope="module")
def packed_tables(circuit, tables):
    pytest.importorskip("numpy")
    from repro.faultsim.packed_table import PackedDetectionTable

    targets, untargeted = tables
    return (
        PackedDetectionTable.from_table(targets),
        PackedDetectionTable.from_table(untargeted),
    )


def test_worst_case_scan_packed(benchmark, tables, packed_tables):
    targets, untargeted = tables
    packed_t, packed_g = packed_tables
    analysis = benchmark(WorstCaseAnalysis, packed_t, packed_g)
    # The vectorized scan is a drop-in: identical records.
    assert analysis.records == WorstCaseAnalysis(targets, untargeted).records


def _best_of(builder, rounds=3):
    times = []
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = builder()
        times.append(time.perf_counter() - start)
    return min(times), result


def test_packed_nmin_scan_speedup(record_speedup):
    """Acceptance: packed nmin scan vs big-int scan on wide circuits.

    Builds both backends' tables over the same sampled universe, times
    ``WorstCaseAnalysis`` (the nmin scan) for each, proves the records
    are identical, and asserts the aggregate speedup across the wide
    suite clears ``REPRO_BENCH_MIN_SPEEDUP``.
    """
    pytest.importorskip("numpy")

    total_big = total_packed = 0.0
    lines = []
    for name in WIDE_CIRCUITS:
        circuit = get_circuit(name)
        samples = min(WIDE_SAMPLES, (1 << circuit.num_inputs) // 2)
        big = FaultUniverse(
            circuit, backend=SampledBackend(samples, seed=7)
        )
        packed = FaultUniverse(
            circuit, backend=PackedBackend(samples=samples, seed=7)
        )
        big_t, big_g = big.target_table, big.untargeted_table
        packed_t, packed_g = packed.target_table, packed.untargeted_table
        def packed_cold():
            # Drop the scan cached on the table so every round pays the
            # full one-time setup (sorted matrix, dedup, bit unpack) a
            # cold `repro analyze` run would pay.
            packed_t.__dict__.pop("_packed_nmin_scan", None)
            return WorstCaseAnalysis(packed_t, packed_g)

        big_time, big_analysis = _best_of(
            lambda: WorstCaseAnalysis(big_t, big_g)
        )
        packed_time, packed_analysis = _best_of(packed_cold)
        assert big_analysis.records == packed_analysis.records
        total_big += big_time
        total_packed += packed_time
        record_speedup(
            {
                "name": "packed_nmin_scan",
                "circuit": name,
                "samples": samples,
                "bigint_s": big_time,
                "packed_s": packed_time,
                "speedup": big_time / packed_time,
            }
        )
        lines.append(
            f"  {name}: big-int {big_time * 1e3:8.1f} ms   "
            f"packed {packed_time * 1e3:8.1f} ms   "
            f"speedup {big_time / packed_time:5.1f}x"
        )
        assert big_time / packed_time >= MIN_CIRCUIT_SPEEDUP, (
            f"{name}: packed/big-int speedup "
            f"{big_time / packed_time:.2f}x below the per-circuit floor "
            f"{MIN_CIRCUIT_SPEEDUP:.2f}x"
        )
    aggregate = total_big / total_packed
    report = (
        f"\npacked nmin scan vs big-int (K={WIDE_SAMPLES}):\n"
        + "\n".join(lines)
        + f"\n  aggregate speedup: {aggregate:.1f}x"
        + f" (required >= {MIN_SPEEDUP:.1f}x)\n"
    )
    print(report, end="")
    assert aggregate >= MIN_SPEEDUP, report


def test_parallel_build_speedup(record_speedup):
    """Acceptance: sharded multiprocessing table builds on wide circuits.

    For every wide sampled circuit, times the full detection-table
    construction (both fault models, shard cache disabled) single-
    process and at each ``PARALLEL_JOBS`` value, proves the parallel
    tables bit-identical to the single-process ones, records every
    timing into the ``BENCH_faultsim.json`` trajectory, and asserts the
    aggregate speedup at the highest jobs value clears
    ``MIN_PARALLEL_SPEEDUP``.  On a single-core machine the assertion
    is waived (a process pool cannot beat the GIL-free single process
    there) but the numbers are still recorded.
    """
    pytest.importorskip("numpy")

    def build(circuit, backend):
        universe = FaultUniverse(circuit, backend=backend)
        return universe.target_table, universe.untargeted_table

    totals = {0: 0.0, **{j: 0.0 for j in PARALLEL_JOBS}}
    lines = []
    for name in WIDE_CIRCUITS:
        circuit = get_circuit(name)
        samples = min(PARALLEL_SAMPLES, (1 << circuit.num_inputs) // 2)
        base = PackedBackend(samples=samples, seed=7)
        single_time, (single_f, single_g) = _best_of(
            lambda: build(circuit, base), rounds=2
        )
        totals[0] += single_time
        row = [f"  {name}: single {single_time * 1e3:8.1f} ms"]
        entry = {
            "name": "parallel_table_build",
            "circuit": name,
            "samples": samples,
            "single_s": single_time,
        }
        for jobs in PARALLEL_JOBS:
            backend = ParallelBackend(base=base, jobs=jobs, use_cache=False)
            par_time, (par_f, par_g) = _best_of(
                lambda: build(circuit, backend), rounds=2
            )
            assert par_f.signatures == single_f.signatures
            assert par_g.signatures == single_g.signatures
            assert par_g.faults == single_g.faults
            totals[jobs] += par_time
            entry[f"jobs{jobs}_s"] = par_time
            entry[f"jobs{jobs}_speedup"] = single_time / par_time
            row.append(
                f"jobs={jobs} {par_time * 1e3:8.1f} ms "
                f"({single_time / par_time:4.2f}x)"
            )
        record_speedup(entry)
        lines.append("   ".join(row))
    top_jobs = max(PARALLEL_JOBS)
    aggregate = totals[0] / totals[top_jobs]
    record_speedup(
        {
            "name": "parallel_table_build_aggregate",
            "samples": PARALLEL_SAMPLES,
            "jobs": top_jobs,
            "single_s": totals[0],
            "parallel_s": totals[top_jobs],
            "speedup": aggregate,
            "cpu_count": os.cpu_count(),
        }
    )
    cpus = os.cpu_count() or 1
    report = (
        f"\nparallel table build vs single-process "
        f"(K={PARALLEL_SAMPLES}, {cpus} cpus):\n"
        + "\n".join(lines)
        + f"\n  aggregate speedup at jobs={top_jobs}: {aggregate:.2f}x"
        + f" (required >= {MIN_PARALLEL_SPEEDUP:.1f}x"
        + (", waived: single-core machine" if cpus < 2 else "")
        + ")\n"
    )
    print(report, end="")
    if cpus >= 2:
        assert aggregate >= MIN_PARALLEL_SPEEDUP, report


def test_queue_executor_build_speedup(record_speedup, tmp_path):
    """Acceptance: distributed work-queue builds on wide circuits.

    Launches ``QUEUE_WORKERS`` real ``repro worker`` subprocesses
    against a temp queue directory, then times the full detection-table
    construction (both fault models) on every wide sampled circuit
    three ways: single-process, ``ParallelBackend`` on a local pool
    (jobs=``QUEUE_WORKERS``), and the queue executor drained by the
    workers.  All tables are proven bit-identical, every wall time
    lands in the ``BENCH_faultsim.json`` trajectory, and the aggregate
    queue-vs-single speedup must clear ``MIN_QUEUE_SPEEDUP`` — waived
    (but still recorded) on single-core machines, where no executor
    can physically beat the single process.
    """
    import subprocess
    import sys
    from pathlib import Path

    pytest.importorskip("numpy")
    from repro.parallel import QueueExecutor

    queue_dir = tmp_path / "queue"
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(Path(__file__).resolve().parents[1] / "src")
        + os.pathsep
        + env.get("PYTHONPATH", "")
    )
    env.pop("REPRO_QUEUE_CRASH_AFTER_CLAIM", None)
    workers = [
        subprocess.Popen(
            [
                sys.executable, "-m", "repro", "worker",
                "--queue", str(queue_dir),
                "--poll-interval", "0.01",
                "--idle-exit", "600",
            ],
            env=env,
        )
        for _ in range(QUEUE_WORKERS)
    ]

    def build(circuit, backend):
        universe = FaultUniverse(circuit, backend=backend)
        return universe.target_table, universe.untargeted_table

    totals = {"single": 0.0, "pool": 0.0, "queue": 0.0}
    lines = []
    try:
        for name in WIDE_CIRCUITS:
            circuit = get_circuit(name)
            samples = min(PARALLEL_SAMPLES, (1 << circuit.num_inputs) // 2)
            base = PackedBackend(samples=samples, seed=7)
            single_time, (single_f, single_g) = _best_of(
                lambda: build(circuit, base), rounds=2
            )
            pool = ParallelBackend(
                base=base, jobs=QUEUE_WORKERS, use_cache=False
            )
            pool_time, (pool_f, pool_g) = _best_of(
                lambda: build(circuit, pool), rounds=2
            )
            queued = ParallelBackend(
                base=base,
                use_cache=False,
                executor=QueueExecutor(
                    queue_dir=str(queue_dir),
                    poll_interval=0.005,
                    wait_timeout=600.0,
                ),
            )
            # One cold round: a repeat would replay the queue's
            # content-addressed results instead of building anything.
            queue_time, (queue_f, queue_g) = _best_of(
                lambda: build(circuit, queued), rounds=1
            )
            for mine in (pool_f, queue_f):
                assert mine.signatures == single_f.signatures
            for mine in (pool_g, queue_g):
                assert mine.signatures == single_g.signatures
                assert mine.faults == single_g.faults
            totals["single"] += single_time
            totals["pool"] += pool_time
            totals["queue"] += queue_time
            record_speedup(
                {
                    "name": "queue_executor_build",
                    "circuit": name,
                    "samples": samples,
                    "workers": QUEUE_WORKERS,
                    "single_s": single_time,
                    "pool_s": pool_time,
                    "queue_s": queue_time,
                    "queue_speedup": single_time / queue_time,
                }
            )
            lines.append(
                f"  {name}: single {single_time * 1e3:8.1f} ms   "
                f"pool {pool_time * 1e3:8.1f} ms "
                f"({single_time / pool_time:4.2f}x)   "
                f"queue {queue_time * 1e3:8.1f} ms "
                f"({single_time / queue_time:4.2f}x)"
            )
    finally:
        for proc in workers:
            proc.terminate()
        for proc in workers:
            proc.wait(timeout=30)
    aggregate = totals["single"] / totals["queue"]
    cpus = os.cpu_count() or 1
    record_speedup(
        {
            "name": "queue_executor_build_aggregate",
            "samples": PARALLEL_SAMPLES,
            "workers": QUEUE_WORKERS,
            "single_s": totals["single"],
            "pool_s": totals["pool"],
            "queue_s": totals["queue"],
            "speedup": aggregate,
            "cpu_count": cpus,
        }
    )
    report = (
        f"\nqueue-executor build ({QUEUE_WORKERS} local workers) vs "
        f"pool vs single-process (K={PARALLEL_SAMPLES}, {cpus} cpus):\n"
        + "\n".join(lines)
        + f"\n  aggregate queue speedup: {aggregate:.2f}x"
        + f" (required >= {MIN_QUEUE_SPEEDUP:.1f}x"
        + (", waived: single-core machine" if cpus < 2 else "")
        + ")\n"
    )
    print(report, end="")
    if cpus >= 2:
        assert aggregate >= MIN_QUEUE_SPEEDUP, report


def test_ppsfp_build_speedup(record_speedup, monkeypatch):
    """Acceptance: PPSFP word-parallel kernel vs big-int cone builds.

    For every wide sampled circuit, times the full detection-table
    construction (both fault models, faults and fault-free base
    signatures precomputed so only the per-fault cone work is measured)
    under ``REPRO_PPSFP=0`` (big-int cone resimulation) and
    ``REPRO_PPSFP=1`` (the numpy word-parallel kernel), proves the
    tables bit-identical, records every timing into the
    ``BENCH_faultsim.json`` trajectory, and asserts the aggregate
    speedup clears ``MIN_PPSFP_SPEEDUP``.
    """
    pytest.importorskip("numpy")
    from repro.faults.bridging import four_way_bridging_faults
    from repro.faults.stuck_at import collapsed_stuck_at_faults
    from repro.faultsim.detection import universe_line_signatures
    from repro.faultsim.sampling import draw_universe

    total_big = total_kernel = 0.0
    lines = []
    for name in WIDE_CIRCUITS:
        circuit = get_circuit(name)
        samples = min(WIDE_SAMPLES, (1 << circuit.num_inputs) // 2)
        universe = draw_universe(circuit.num_inputs, samples, seed=7)
        base = universe_line_signatures(circuit, universe)
        stuck = collapsed_stuck_at_faults(circuit)
        bridging = four_way_bridging_faults(circuit)

        def build():
            targets = DetectionTable.for_stuck_at(
                circuit,
                faults=stuck,
                base_signatures=base,
                universe=universe,
            )
            untargeted = DetectionTable.for_bridging(
                circuit,
                faults=bridging,
                base_signatures=base,
                universe=universe,
            )
            return targets, untargeted

        monkeypatch.setenv("REPRO_PPSFP", "0")
        big_time, (big_f, big_g) = _best_of(build)
        monkeypatch.setenv("REPRO_PPSFP", "1")
        build()  # warm-up: numpy dispatch + the circuit's cone masks
        kernel_time, (ker_f, ker_g) = _best_of(build, rounds=5)
        assert ker_f.signatures == big_f.signatures
        assert ker_g.signatures == big_g.signatures
        assert ker_g.faults == big_g.faults
        total_big += big_time
        total_kernel += kernel_time
        record_speedup(
            {
                "name": "ppsfp_table_build",
                "circuit": name,
                "samples": samples,
                "faults": len(stuck) + len(bridging),
                "bigint_s": big_time,
                "kernel_s": kernel_time,
                "speedup": big_time / kernel_time,
            }
        )
        lines.append(
            f"  {name}: big-int {big_time * 1e3:8.1f} ms   "
            f"kernel {kernel_time * 1e3:8.1f} ms   "
            f"speedup {big_time / kernel_time:5.1f}x"
        )
    aggregate = total_big / total_kernel
    record_speedup(
        {
            "name": "ppsfp_table_build_aggregate",
            "samples": WIDE_SAMPLES,
            "bigint_s": total_big,
            "kernel_s": total_kernel,
            "speedup": aggregate,
        }
    )
    report = (
        f"\nPPSFP kernel table build vs big-int (K={WIDE_SAMPLES}):\n"
        + "\n".join(lines)
        + f"\n  aggregate speedup: {aggregate:.1f}x"
        + f" (required >= {MIN_PPSFP_SPEEDUP:.1f}x)\n"
    )
    print(report, end="")
    assert aggregate >= MIN_PPSFP_SPEEDUP, report


def test_adaptive_sample_efficiency(record_speedup):
    """Acceptance: adaptive+stratified vs fixed-K sample cost.

    For every wide circuit, runs the stratified adaptive controller to
    the relative half-width target and compares the vectors it
    simulated against two fixed-``K`` baselines:

    (a) the restart-based geometric search — the *same* stratified
        stopping rule without incremental signature reuse, which pays
        the sum of the grid sizes (directly measured from the
        trajectory); and
    (b) the uniform draw certifying the *same focus faults* to the same
        relative half-width: a Wilson interval on a fault with
        detection probability ``p`` needs ``K ≈ z²(1-p)/(p·target²)``
        uniform vectors, computed analytically from the stratified
        run's own certified estimates (rare-activation faults make
        this astronomically larger than any practical draw).

    For context it also sweeps a uniform-growth run under the
    uniform-mode rule (focus pool = all faults) to
    ``ADAPTIVE_UNIFORM_CAP``, recording whether that criterion was met
    and its achieved half-width — note that pool differs from the
    stratified run's covered-fault pool, so it is recorded, not
    asserted against.  Asserts the adaptive run met the target and
    strictly undercut both (a) and (b).
    """
    from repro.adaptive import AdaptiveSampler, StoppingRule
    from repro.faultsim.sampling import confidence_z

    lines = []
    for name in WIDE_CIRCUITS:
        circuit = get_circuit(name)
        budget = min(ADAPTIVE_BUDGET, (1 << circuit.num_inputs) // 2)
        rule = StoppingRule(
            target_halfwidth=ADAPTIVE_TARGET,
            initial_samples=64,
            max_samples=budget,
            k_smallest=8,
        )
        start = time.perf_counter()
        adaptive = AdaptiveSampler(
            circuit, rule=rule, seed=7, stratify="bridging",
            use_cache=False,
        ).run()
        adaptive_s = time.perf_counter() - start
        assert adaptive.met, (
            f"{name}: stratified adaptive run missed the "
            f"{ADAPTIVE_TARGET} target within {budget} vectors "
            f"({adaptive.reason})"
        )
        adaptive_vectors = adaptive.total_vectors
        # (a) The non-incremental search pays every grid size again.
        restart_vectors = sum(r.k_total for r in adaptive.rounds)
        # (b) Analytic uniform requirement for the same focus faults.
        z = confidence_z(rule.confidence)
        space = 1 << circuit.num_inputs
        uniform_same_focus = 0
        for fe in adaptive.focus:
            p = fe.estimate.estimate / space
            if p <= 0.0:
                continue
            required = int(
                z * z * (1.0 - p) / (p * ADAPTIVE_TARGET**2)
            )
            uniform_same_focus = max(uniform_same_focus, required)
        # Context: uniform growth under the uniform-mode rule (its
        # focus pool is the k smallest over *all* faults — a different
        # criterion, so recorded but not asserted against).
        uniform_cap = min(ADAPTIVE_UNIFORM_CAP, budget)
        uniform = AdaptiveSampler(
            circuit,
            rule=StoppingRule(
                target_halfwidth=ADAPTIVE_TARGET,
                initial_samples=64,
                max_samples=uniform_cap,
                k_smallest=8,
            ),
            seed=7,
            use_cache=False,
        ).run()
        entry = {
            "name": "adaptive_sample_efficiency",
            "circuit": name,
            "target_halfwidth": ADAPTIVE_TARGET,
            "budget": budget,
            "adaptive_vectors": adaptive_vectors,
            "adaptive_rounds": len(adaptive.rounds),
            "adaptive_s": adaptive_s,
            "restart_fixed_k_vectors": restart_vectors,
            "uniform_same_focus_vectors": uniform_same_focus,
            "uniform_rule_cap": uniform_cap,
            "uniform_rule_met": uniform.met,
            "uniform_rule_achieved_halfwidth": (
                uniform.rounds[-1].relative_worst
            ),
            "strata": adaptive.plan.num_strata,
        }
        record_speedup(entry)
        lines.append(
            f"  {name}: adaptive {adaptive_vectors} vectors "
            f"({len(adaptive.rounds)} rounds, {adaptive_s:.1f}s)   "
            f"restart fixed-K {restart_vectors}   "
            f"uniform same-focus ~{uniform_same_focus}"
        )
        assert adaptive_vectors < restart_vectors, (
            f"{name}: incremental reuse saved nothing"
        )
        assert uniform_same_focus > 0, (
            f"{name}: no certified focus fault to compare against"
        )
        assert adaptive_vectors < uniform_same_focus, (
            f"{name}: stratification did not beat the uniform draw"
        )
    report = (
        f"\nadaptive vs fixed-K sample cost "
        f"(target half-width {ADAPTIVE_TARGET}, ~ = analytic):\n"
        + "\n".join(lines)
        + "\n"
    )
    print(report, end="")


def test_procedure1_def1(benchmark, tables):
    targets, _ = tables
    family = benchmark.pedantic(
        build_random_ndetection_sets,
        args=(targets,),
        kwargs={"n_max": 5, "num_sets": 50, "seed": 1},
        rounds=3,
        iterations=1,
    )
    assert family.num_sets == 50


def test_procedure1_def2(benchmark, tables):
    targets, _ = tables
    family = benchmark.pedantic(
        build_random_ndetection_sets,
        args=(targets,),
        kwargs={"n_max": 3, "num_sets": 10, "seed": 1, "counting": "def2"},
        rounds=1,
        iterations=1,
    )
    assert family.num_sets == 10
