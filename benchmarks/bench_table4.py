"""Regenerate Table 4: K = 10 random 1-/2-detection sets (example circuit)."""

from __future__ import annotations

from repro.experiments.table4 import run_table4


def test_table4(benchmark, save_artifact):
    result = benchmark.pedantic(
        run_table4, kwargs={"num_sets": 10, "seed": 2005},
        rounds=3, iterations=1,
    )
    save_artifact("table4", result.render())
    fam = result.family
    assert fam.num_sets == 10
    for k in range(10):
        assert set(fam.test_set(1, k)) <= set(fam.test_set(2, k))
