"""Regenerate Figure 2: the nmin(g) distribution of a heavy-tail circuit.

The paper plots dvram; the artifact includes the ASCII chart for our
dvram reconstruction and asserts the tail reaches nmin >= 100.
"""

from __future__ import annotations

from repro.experiments.figure2 import run_figure2


def test_figure2(benchmark, save_artifact):
    result = benchmark.pedantic(
        run_figure2, args=("dvram",), kwargs={"minimum": 100},
        rounds=1, iterations=1,
    )
    save_artifact("figure2", result.render())

    assert result.series, "dvram lost its nmin >= 100 tail"
    total = sum(count for _v, count in result.series)
    assert total >= 50
    # The distribution spreads over many distinct nmin values (the
    # paper's figure shows a long, multi-valued tail, not one spike).
    assert len(result.series) >= 5
