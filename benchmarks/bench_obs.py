"""Overhead benchmark for the ``repro.obs`` instrumentation layer.

The design contract of the tracer is *zero overhead when off*: every
instrumented hot path (PPSFP matrix batches, detection-table builds,
executor shards) pays only a no-op span handout when no tracer is
active.  This bench quantifies that claim three ways:

1. **Disabled span cost** — a tight loop over ``obs.span(...)`` with
   the default null tracer measures the per-call price of an
   instrumentation point that is turned off.
2. **Attributed build overhead** — a traced table build (to an
   in-memory writer) counts how many spans/events one build actually
   emits; ``spans × disabled_cost ÷ untraced build wall`` is the
   fraction of a real build spent in disabled instrumentation.  The
   acceptance floor: **< 2%** (``REPRO_BENCH_OBS_MAX_OVERHEAD``
   overrides, e.g. on noisy shared CI runners).
3. **Enabled tracing cost** — the same build with a live JSONL writer,
   reported (not asserted) so the trajectory records what switching
   tracing *on* costs.

Numbers land in ``benchmarks/out/BENCH_obs.json``.

Environment knobs: ``REPRO_BENCH_OBS_CIRCUIT`` (default ``wide28``),
``REPRO_BENCH_OBS_SAMPLES`` (default 512), ``REPRO_BENCH_OBS_REPEATS``
(default 3 build repetitions, best-of), ``REPRO_BENCH_OBS_SPAN_LOOPS``
(default 200000 no-op span calls), ``REPRO_BENCH_OBS_MAX_OVERHEAD``
(default 0.02).
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

from conftest import env_int

OUT_PATH = Path(__file__).parent / "out" / "BENCH_obs.json"

CIRCUIT = os.environ.get("REPRO_BENCH_OBS_CIRCUIT") or "wide28"
SAMPLES = env_int("REPRO_BENCH_OBS_SAMPLES", 512)
REPEATS = env_int("REPRO_BENCH_OBS_REPEATS", 3)
SPAN_LOOPS = env_int("REPRO_BENCH_OBS_SPAN_LOOPS", 200_000)
MAX_OVERHEAD = float(
    os.environ.get("REPRO_BENCH_OBS_MAX_OVERHEAD") or "0.02"
)


def _build_once() -> float:
    """One PPSFP universe build; returns wall seconds."""
    from repro.bench_suite.registry import get_circuit
    from repro.faults.universe import FaultUniverse
    from repro.faultsim.backends import make_backend

    backend = make_backend("packed", samples=SAMPLES, seed=7)
    universe = FaultUniverse(get_circuit(CIRCUIT), backend=backend)
    t0 = time.perf_counter()
    universe.target_table  # noqa: B018 - lazy build, forced here
    universe.untargeted_table  # noqa: B018
    return time.perf_counter() - t0


def _best_build() -> float:
    return min(_build_once() for _ in range(REPEATS))


def test_disabled_tracer_overhead(record_speedup):
    from repro import obs
    from repro.obs.tracer import ListTraceWriter, Tracer

    previous = obs.activate(obs.NULL_TRACER)
    try:
        # -- 1: per-call cost of a disabled instrumentation point ------
        t0 = time.perf_counter()
        for _ in range(SPAN_LOOPS):
            with obs.span("noop", circuit=CIRCUIT, batch=64):
                pass
        disabled_span_s = (time.perf_counter() - t0) / SPAN_LOOPS

        # -- 2: spans per build, and the untraced build wall -----------
        untraced_s = _best_build()

        writer = ListTraceWriter()
        obs.activate(Tracer(writer, trace_id="bench", proc="bench"))
        counted_s = _build_once()
        span_count = len(writer.records)
        obs.activate(obs.NULL_TRACER)
        assert span_count > 0, "instrumented build emitted no spans"

        overhead_fraction = span_count * disabled_span_s / untraced_s
        assert overhead_fraction < MAX_OVERHEAD, (
            f"disabled instrumentation costs {overhead_fraction:.2%} of a "
            f"{CIRCUIT} build ({span_count} spans x "
            f"{disabled_span_s * 1e9:.0f} ns), floor is {MAX_OVERHEAD:.0%}"
        )

        # -- 3: what tracing *on* costs (reported, not asserted) -------
        trace_path = OUT_PATH.parent / "bench_obs_trace.jsonl"
        obs.activate(
            Tracer(
                obs.JsonlTraceWriter(str(trace_path), truncate=True),
                trace_id="bench",
            )
        )
        traced_s = _best_build()
        obs.current_tracer().close()
        obs.activate(obs.NULL_TRACER)
        try:
            trace_path.unlink()
        except OSError:
            pass
    finally:
        obs.reset(previous)

    entry = {
        "name": "obs_overhead",
        "circuit": CIRCUIT,
        "samples": SAMPLES,
        "disabled_span_ns": disabled_span_s * 1e9,
        "spans_per_build": span_count,
        "untraced_build_s": untraced_s,
        "counted_build_s": counted_s,
        "traced_build_s": traced_s,
        "disabled_overhead_fraction": overhead_fraction,
        "enabled_overhead_fraction": traced_s / untraced_s - 1.0,
        "max_overhead": MAX_OVERHEAD,
    }
    record_speedup(dict(entry))

    payload = {
        "schema": 1,
        "created_unix": time.time(),
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        "overhead": entry,
    }
    OUT_PATH.parent.mkdir(exist_ok=True)
    OUT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True))
    print(
        f"\n[artifact] {OUT_PATH}\n"
        f"obs overhead ({CIRCUIT}, {SAMPLES} samples): disabled span "
        f"{disabled_span_s * 1e9:.0f} ns x {span_count} spans = "
        f"{overhead_fraction:.3%} of a {untraced_s:.3f}s build "
        f"(floor {MAX_OVERHEAD:.0%}); tracing on costs "
        f"{(traced_s / untraced_s - 1.0):+.1%}\n"
    )
